"""Asynchronous staleness-weighted aggregation tests.

Four layers:

1. **Discounts** — the constant/polynomial/adaptive staleness discounts'
   arithmetic, validation, and the adaptive exponent's SignOGD walk.
2. **Event queue** — commit batching, deterministic arrival ordering,
   and the staleness each commit actually records (cross-backend and
   synchronous-equivalence identity live in ``tests/test_engine.py``'s
   equivalence matrix; the pinned async history in its golden suite).
3. **Telemetry** — async runs emit schema-valid ``round`` events with
   ``staleness``/``staleness_max`` and per-arrival ``async.arrival``
   spans through the existing registry, as strict JSONL, and tracing
   never changes results.
4. **Experiment wiring** — ``ScenarioConfig.async_mode`` and friends,
   the :func:`repro.experiments.scenario.run_async_comparison` panel
   (async must reach the shared target loss in less simulated time than
   the synchronous barrier under heterogeneous timing), and the CLI
   flags.
"""

import json

import numpy as np
import pytest

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.async_engine import (
    DEFAULT_EXPONENT_INTERVAL,
    STALENESS_DISCOUNT_KINDS,
    AdaptiveStalenessDiscount,
    AsyncFLTrainer,
    ConstantDiscount,
    PolynomialDiscount,
    build_staleness_discount,
)
from repro.nn.models import make_mlp
from repro.obs import open_telemetry
from repro.obs.events import validate_event
from repro.scenarios import DeploymentScenario, ScenarioConfig
from repro.simulation.heterogeneous import (
    ClientProfile,
    HeterogeneousTimingModel,
)
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def _federation(num_writers=6, seed=5):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=20,
                           num_classes=10, image_size=8, classes_per_writer=4,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


def _profiles(fed, slow_ids, factor=4.0):
    return [
        ClientProfile(
            client_id=c.client_id,
            compute_factor=factor if c.client_id in slow_ids else 1.0,
            comm_factor=factor if c.client_id in slow_ids else 1.0,
        )
        for c in fed.clients
    ]


def _async_trainer(discount="constant", commit_count=3, slow_ids=(0, 3),
                   telemetry=None, seed=5, **kwargs):
    fed = _federation(seed=seed)
    model = make_mlp(64, 10, hidden=(12,), seed=seed)
    profiles = _profiles(fed, set(slow_ids))
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    return AsyncFLTrainer(
        model, fed, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=8, eval_every=4, seed=seed, discount=discount,
        commit_count=commit_count, profiles=profiles, telemetry=telemetry,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Staleness discounts
# ----------------------------------------------------------------------
class TestDiscounts:
    def test_constant_is_staleness_blind(self):
        d = ConstantDiscount(0.5)
        assert d.factor(0) == d.factor(7) == 0.5
        assert d.probe_exponent() is None and not d.adaptive

    def test_constant_validates_range(self):
        with pytest.raises(ValueError):
            ConstantDiscount(0.0)
        with pytest.raises(ValueError):
            ConstantDiscount(1.5)
        with pytest.raises(ValueError):
            ConstantDiscount(1.0).factor(-1)

    def test_polynomial_attenuation(self):
        d = PolynomialDiscount(exponent=1.0)
        assert d.factor(0) == 1.0
        assert d.factor(1) == pytest.approx(0.5)
        assert d.factor(3) == pytest.approx(0.25)
        assert PolynomialDiscount(exponent=0.0).factor(9) == 1.0

    def test_adaptive_probe_strictly_below_current(self):
        d = AdaptiveStalenessDiscount()
        a = d.exponent
        probe = d.probe_exponent()
        assert 0.0 < probe < a
        assert d.factor(2) == pytest.approx((1.0 + 2) ** -a)

    def test_adaptive_walk_moves_with_signs(self):
        d = AdaptiveStalenessDiscount()
        start = d.exponent
        d.observe(1)  # positive estimated gradient: step the exponent down
        stepped = d.exponent
        assert stepped < start
        d.observe(None)  # uninformative commit: unchanged
        assert d.exponent == stepped
        lo, hi = DEFAULT_EXPONENT_INTERVAL
        for _ in range(64):
            d.observe(1)
        assert d.exponent >= lo  # clamped to the interval
        for _ in range(64):
            d.observe(-1)
        assert d.exponent <= hi

    def test_frozen_adaptive_never_probes(self):
        d = AdaptiveStalenessDiscount(a1=0.7, probe=False)
        assert d.probe_exponent() is None
        assert d.exponent == pytest.approx(0.7)

    def test_builder_kinds_and_aliases(self):
        assert isinstance(build_staleness_discount("poly"),
                          PolynomialDiscount)
        assert isinstance(build_staleness_discount("const"),
                          ConstantDiscount)
        for kind in STALENESS_DISCOUNT_KINDS:
            assert build_staleness_discount(kind).name == kind
        with pytest.raises(ValueError):
            build_staleness_discount("linear")


# ----------------------------------------------------------------------
# Event queue / commit mechanics
# ----------------------------------------------------------------------
class TestCommitMechanics:
    def test_commits_record_staleness(self):
        trainer = _async_trainer(commit_count=3)
        trainer.run(8, k=12)
        trace = trainer.staleness_history
        assert len(trace) == 8
        assert trace[0] == 0.0  # first commit: everything fresh
        assert max(trace) > 0.0  # stragglers eventually arrive stale
        assert all(s >= 0.0 for s in trace)

    def test_virtual_clock_matches_history(self):
        trainer = _async_trainer(commit_count=3)
        history = trainer.run(6, k=12)
        records = list(history)
        assert trainer.clock == pytest.approx(trainer.virtual_clock)
        assert records[-1].cumulative_time == pytest.approx(
            trainer.virtual_clock
        )
        times = [r.round_time for r in records]
        assert all(t > 0.0 for t in times)
        assert len(set(round(t, 9) for t in times)) > 1  # commits re-time

    def test_buffered_commits_outpace_the_barrier(self):
        # Same cohort, same stragglers: committing after the fast half
        # must advance simulated time faster than waiting for everyone.
        buffered = _async_trainer(commit_count=3)
        barrier = _async_trainer(commit_count=0)
        buffered.run(6, k=12)
        barrier.run(6, k=12)
        assert buffered.virtual_clock < barrier.virtual_clock

    def test_discount_scales_the_update(self):
        # A global 0.5 discount halves every wire value, so the very
        # first commit's step must differ from the undiscounted one.
        full = _async_trainer(discount=ConstantDiscount(1.0))
        half = _async_trainer(discount=ConstantDiscount(0.5))
        full.step(12)
        half.step(12)
        assert not np.array_equal(
            full.model.get_weights(), half.model.get_weights()
        )

    def test_adaptive_exponent_walks_under_staleness(self):
        trainer = _async_trainer(discount="adaptive", commit_count=3)
        trainer.run(10, k=12)
        history = trainer.discount.exponent_history
        assert len(history) >= 10
        assert len(set(history)) > 1  # the walk actually moved

    def test_run_round_is_rejected(self):
        trainer = _async_trainer()
        with pytest.raises(RuntimeError):
            trainer.engine.run_round(12)

    def test_sync_mode_validates_preconditions(self):
        with pytest.raises(ValueError):
            _async_trainer(commit_count=3, synchronous=True)
        with pytest.raises(ValueError):
            _async_trainer(discount=ConstantDiscount(0.5), commit_count=0,
                           synchronous=True)

    def test_scenario_and_sampler_are_exclusive(self):
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        config = ScenarioConfig(availability="always", participants=4)
        ids = [c.client_id for c in fed.clients]
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        scenario = DeploymentScenario.build(config, ids, timing)
        with pytest.raises(ValueError):
            AsyncFLTrainer(model, fed, FABTopK(), timing=timing,
                           scenario=scenario, sampler=scenario.sampler)

    def test_scenario_supplies_sampler_and_profiles(self):
        fed = _federation()
        model = make_mlp(64, 10, hidden=(12,), seed=5)
        config = ScenarioConfig(
            availability="always", participants=4, slow_fraction=0.25,
            seed=5,
        )
        ids = [c.client_id for c in fed.clients]
        profiles = config.build_profiles(ids)
        timing = HeterogeneousTimingModel(
            model.dimension, comm_time=10.0, profiles=profiles
        )
        scenario = DeploymentScenario.build(config, ids, timing, profiles)
        trainer = AsyncFLTrainer(
            model, fed, FABTopK(), timing=timing, scenario=scenario,
            commit_count=2, seed=5,
        )
        history = trainer.run(4, k=12)
        assert all(r.round_index == i + 1 for i, r in enumerate(history))
        assert trainer.engine.profiles  # profiles came from the scenario


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestAsyncTelemetry:
    def _trace(self, tmp_path, **kwargs):
        path = tmp_path / "trace.jsonl"
        telemetry = open_telemetry(str(path))
        trainer = _async_trainer(telemetry=telemetry, **kwargs)
        trainer.run(6, k=12)
        telemetry.close()
        records = [
            json.loads(line, parse_constant=lambda s: pytest.fail(
                f"non-strict JSON token {s}"
            ))
            for line in path.read_text().splitlines() if line
        ]
        return trainer, records

    def test_round_events_carry_staleness(self, tmp_path):
        trainer, records = self._trace(tmp_path, commit_count=3)
        rounds = [r for r in records if r["type"] == "round"]
        assert len(rounds) == 6
        for event in rounds:
            validate_event(event)
            assert event["staleness"] >= 0.0
            assert event["staleness_max"] >= 0
            assert event["in_flight"] >= 0
            assert event["version"] == event["round"]
        assert [r["staleness"] for r in rounds] == trainer.staleness_history

    def test_arrival_spans_are_schema_valid(self, tmp_path):
        trainer, records = self._trace(tmp_path, commit_count=3)
        spans = [r for r in records
                 if r["type"] == "span" and r["name"] == "async.arrival"]
        rounds = [r for r in records if r["type"] == "round"]
        assert len(spans) == sum(r["participants"] for r in rounds)
        for span in spans:
            validate_event(span)
            assert span["seconds"] > 0.0  # virtual flight time
            assert span["staleness"] >= 0
        assert max(s["staleness"] for s in spans) > 0

    def test_tracing_changes_nothing(self, tmp_path):
        traced, _ = self._trace(tmp_path, commit_count=3)
        untraced = _async_trainer(commit_count=3)
        untraced.run(6, k=12)
        np.testing.assert_array_equal(
            traced.model.get_weights(), untraced.model.get_weights()
        )
        assert traced.staleness_history == untraced.staleness_history


# ----------------------------------------------------------------------
# Experiment wiring: config, panel, CLI
# ----------------------------------------------------------------------
class TestAsyncWiring:
    def test_scenario_config_fields_round_trip(self):
        config = ScenarioConfig.default_churn().with_overrides(
            async_mode=True, staleness_discount="poly", commit_count=4,
        )
        assert config.staleness_discount == "polynomial"  # alias folded
        assert ScenarioConfig.from_dict(config.to_dict()) == config

    def test_scenario_config_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(staleness_discount="linear")
        with pytest.raises(ValueError):
            ScenarioConfig(commit_count=-1)

    def test_resolve_commit_count(self):
        from repro.experiments.scenario import resolve_commit_count

        explicit = ScenarioConfig(commit_count=5)
        assert resolve_commit_count(explicit, num_clients=20) == 5
        cohort = ScenarioConfig(participants=8)
        assert resolve_commit_count(cohort, num_clients=20) == 4
        everyone = ScenarioConfig()
        assert resolve_commit_count(everyone, num_clients=6) == 3
        assert resolve_commit_count(ScenarioConfig(participants=1),
                                    num_clients=6) == 1

    def test_async_comparison_panel(self):
        from repro.experiments.config import scaled_config
        from repro.experiments.scenario import (
            ASYNC_VARIANTS,
            run_async_comparison,
        )

        config = scaled_config("smoke", "scenario")
        scenario = ScenarioConfig.default_churn().with_overrides(
            seed=config.seed, async_mode=True,
        )
        config = config.with_overrides(scenario=scenario.to_dict())
        result = run_async_comparison(config)
        assert sorted(result.histories) == sorted(ASYNC_VARIANTS)
        assert result.loss_vs_time.labels() == list(ASYNC_VARIANTS)
        # The acceptance comparison: async reaches the shared reachable
        # target loss in less simulated time than the sync barrier.
        reachable = max(result.final_losses().values())
        times = result.time_to_loss(reachable)
        assert times["async-constant"] < times["sync"]
        # Staleness traces exist for every async variant and actually
        # record staleness; the adaptive variant adds its exponent trace.
        labels = result.staleness.labels()
        for variant in ASYNC_VARIANTS[1:]:
            assert variant in labels
            assert max(result.staleness.get(variant).y) > 0.0
        assert "async-adaptive exponent" in labels

    def test_cli_flags(self):
        from repro.cli import _scenario_overrides, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["scenario", "--async", "--staleness", "poly",
             "--commit-count", "4"]
        )
        overrides = _scenario_overrides(args, seed=0)
        assert overrides["async_mode"] is True
        assert overrides["staleness_discount"] == "polynomial"
        assert overrides["commit_count"] == 4
        # async-only knobs imply the async comparison
        implied = _scenario_overrides(
            parser.parse_args(["scenario", "--staleness", "adaptive"]),
            seed=0,
        )
        assert implied["async_mode"] is True
        plain = _scenario_overrides(parser.parse_args(["scenario"]), seed=0)
        assert plain["async_mode"] is False
