"""Adversarial-robustness subsystem tests.

The PR's acceptance criteria, mirrored on the scenario suite's four
guarantees:

(a) **Backend bit-identity under attack** — every attack × defense
    configuration produces identical histories, weights and residuals
    on the serial, vectorized and sharded backends (corruption and
    robust aggregation are parent-side, like all scenario logic).
(b) **Residual honesty + exact poisoned recovery** — an adversary's
    error-feedback state evolves exactly as if the honest upload had
    been sent, and a deadline-dropped poisoned client's gradient
    re-enters through FAB/top-k residual accumulation exactly: the
    recovered wire payload is the attack applied to the honestly
    accumulated gradients.
(c) **Degenerate identity** — adversary "none" + aggregator "mean"
    reproduces the plain trainer byte for byte (no corruption seam, no
    aggregator object — the original server path runs unchanged).
(d) **Golden adversarial history** — a pinned churn + sign-flip +
    trimmed-mean run guards attack and defense semantics absolutely.

Plus unit coverage of the attack processes (property-based purity —
invariant (a) rests on it), the robust aggregators (scale
compatibility, outlier rejection, norm clipping of singleton-support
coordinates, the ``commit=False`` probe discipline), config validation,
``flagged`` telemetry, the panel driver, and the CLI/sweep threading.
"""

import json
import pathlib

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.engine import RoundHooks
from repro.fl.robust import (
    AGGREGATOR_KINDS,
    CosineReputationAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
    build_aggregator,
)
from repro.fl.server import Server
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.obs import EVENT_TYPES, open_telemetry, validate_event
from repro.parallel.sharded import ShardedBackend
from repro.scenarios import (
    ADVERSARY_KINDS,
    AdversaryModel,
    AdversaryProcess,
    DeploymentScenario,
    NoiseAdversary,
    ScenarioConfig,
    SignFlipAdversary,
    build_adversary,
)
from repro.scenarios.adversary import _PROCESS_CLASSES
from repro.simulation.heterogeneous import (
    ClientProfile,
    HeterogeneousTimingModel,
)
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SelectionResult, SparseVector
from repro.sparsify.fab_topk import FABTopK

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_histories.json"

ATTACK_KINDS = tuple(k for k in ADVERSARY_KINDS if k != "none")
ROBUST_KINDS = tuple(k for k in AGGREGATOR_KINDS if k != "mean")


def history_rows(history):
    return [
        (
            r.round_index, r.k, r.round_time, r.cumulative_time,
            None if np.isnan(r.loss) else r.loss, r.accuracy,
            r.uplink_elements, r.downlink_elements,
            tuple(sorted(r.contributions.items())),
        )
        for r in history
    ]


def _federation(seed=5, num_writers=8):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=16,
                           num_classes=8, image_size=8, classes_per_writer=4,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


#: churn + deadline + stragglers + sign-flip adversaries — the
#: bit-identity matrix's base regime (seed 5 designates clients 2 and 4
#: among the 8-writer federation).
ATTACK_CHURN = ScenarioConfig(
    availability="markov",
    p_drop=0.2,
    p_recover=0.6,
    participants=5,
    over_selection=0.4,
    deadline=(2.5, 2.5, 9.0),
    slow_fraction=0.25,
    slow_factor=4.0,
    adversary="sign_flip",
    adversary_fraction=0.3,
    aggregator="trimmed_mean",
    seed=5,
)


def _scenario_trainer(backend, scenario_config=ATTACK_CHURN, seed=5):
    fed = _federation(seed=seed)
    model = make_mlp(64, 8, hidden=(10,), seed=seed)
    ids = [c.client_id for c in fed.clients]
    profiles = scenario_config.build_profiles(ids)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    scenario = DeploymentScenario.build(scenario_config, ids, timing, profiles)
    trainer = FLTrainer(
        model, fed, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=8, eval_every=3, seed=seed, backend=backend,
        scenario=scenario,
    )
    return trainer, scenario


# ----------------------------------------------------------------------
# Attack-process purity
# ----------------------------------------------------------------------
class TestAdversaryProcessPurity:
    """Corruption is a pure function of (seed, cid, round, values)."""

    def test_designation_is_per_client_and_order_independent(self):
        first = AdversaryModel("sign_flip", 0.4, seed=9)
        second = AdversaryModel("scale", 0.4, seed=9)
        forward = [first.is_adversary(c) for c in range(32)]
        backward = [second.is_adversary(c) for c in reversed(range(32))]
        assert forward == backward[::-1]
        # The law is the documented tagged Bernoulli draw.
        for cid in range(32):
            draw = np.random.default_rng((9, 0xBAD0, cid)).random()
            assert first.is_adversary(cid) == (draw < 0.4)

    def test_designation_extremes(self):
        nobody = AdversaryModel("sign_flip", 0.0, seed=3)
        everyone = AdversaryModel("sign_flip", 1.0, seed=3)
        assert not any(nobody.is_adversary(c) for c in range(20))
        assert all(everyone.is_adversary(c) for c in range(20))

    @pytest.mark.parametrize("kind", ATTACK_KINDS)
    def test_corruption_repeatable_across_instances(self, kind):
        values = np.linspace(-2.0, 3.0, 17)
        a = _PROCESS_CLASSES[kind](seed=7, scale=10.0)
        b = _PROCESS_CLASSES[kind](seed=7, scale=10.0)
        first = a.corrupt(values, client_id=4, round_index=3)
        # Interleave unrelated calls: purity means they cannot matter.
        a.corrupt(values, client_id=1, round_index=1)
        a.corrupt(np.ones(4), client_id=4, round_index=9)
        np.testing.assert_array_equal(
            first, a.corrupt(values, client_id=4, round_index=3)
        )
        np.testing.assert_array_equal(
            first, b.corrupt(values, client_id=4, round_index=3)
        )

    def test_noise_varies_by_client_and_round(self):
        adv = NoiseAdversary(seed=7, scale=1.0)
        values = np.ones(16)
        base = adv.corrupt(values, client_id=0, round_index=1)
        assert not np.array_equal(
            base, adv.corrupt(values, client_id=1, round_index=1)
        )
        assert not np.array_equal(
            base, adv.corrupt(values, client_id=0, round_index=2)
        )

    def test_corrupt_upload_is_wire_only(self):
        model = AdversaryModel("sign_flip", 1.0, seed=0, scale=10.0)
        indices = np.array([2, 5, 9], dtype=np.int64)
        values = np.array([1.0, -2.0, 0.5])
        honest = values.copy()
        upload = ClientUpload(
            client_id=3,
            payload=SparseVector.from_sorted(indices, values, 12),
            sample_count=4,
        )
        poisoned = model.corrupt_upload(upload, round_index=1)
        # Support is preserved by identity — the vectorized backend's
        # fast residual reset keys on the exact indices array object.
        assert poisoned.payload.indices is indices
        assert poisoned.payload.dimension == 12
        assert poisoned.sample_count == 4
        np.testing.assert_array_equal(poisoned.payload.values, -10.0 * honest)
        # The honest payload (and the client's bookkeeping it feeds)
        # is untouched.
        np.testing.assert_array_equal(upload.payload.values, honest)

    def test_build_adversary_degenerate(self):
        assert build_adversary(ScenarioConfig(availability="always")) is None
        assert build_adversary(ScenarioConfig(
            availability="always", adversary="scale", adversary_fraction=0.0,
        )) is None
        built = build_adversary(ScenarioConfig(
            availability="always", adversary="scale", adversary_fraction=0.5,
            adversary_scale=3.0, seed=2,
        ))
        assert built is not None and built.process.scale == 3.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary kind"):
            AdversaryModel("gaussian", 0.5, seed=0)
        with pytest.raises(ValueError, match="fraction must be in"):
            AdversaryModel("sign_flip", 1.5, seed=0)
        with pytest.raises(ValueError, match="scale must be positive"):
            SignFlipAdversary(seed=0, scale=0.0)
        with pytest.raises(NotImplementedError):
            AdversaryProcess(seed=0).corrupt(np.ones(3), 0, 1)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=50, deadline=None)
        @given(
            kind=st.sampled_from(ATTACK_KINDS),
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            cid=st.integers(min_value=0, max_value=10_000),
            round_index=st.integers(min_value=1, max_value=10_000),
            values=st.lists(
                st.floats(min_value=-100.0, max_value=100.0,
                          allow_nan=False, width=32),
                min_size=1, max_size=32,
            ),
        )
        def test_corruption_is_pure(self, kind, seed, cid, round_index,
                                    values):
            array = np.array(values, dtype=np.float64)
            a = _PROCESS_CLASSES[kind](seed=seed, scale=10.0)
            b = _PROCESS_CLASSES[kind](seed=seed, scale=10.0)
            first = a.corrupt(array, cid, round_index)
            a.corrupt(array[::1], cid + 1, round_index)  # unrelated call
            np.testing.assert_array_equal(
                first, a.corrupt(array, cid, round_index)
            )
            np.testing.assert_array_equal(
                first, b.corrupt(array, cid, round_index)
            )
            np.testing.assert_array_equal(array, np.array(values))

        @settings(max_examples=50, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            fraction=st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False),
            cids=st.lists(st.integers(min_value=0, max_value=10_000),
                          min_size=1, max_size=32),
        )
        def test_designation_is_pure(self, seed, fraction, cids):
            a = AdversaryModel("topk", fraction, seed=seed)
            b = AdversaryModel("noise", fraction, seed=seed)
            assert [a.is_adversary(c) for c in cids] == [
                b.is_adversary(c) for c in reversed(cids)
            ][::-1]


# ----------------------------------------------------------------------
# Robust aggregator units
# ----------------------------------------------------------------------
def _upload(cid, indices, values, dimension=16, samples=8):
    return ClientUpload(
        client_id=cid,
        payload=SparseVector.from_sorted(
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            dimension,
        ),
        sample_count=samples,
    )


def _selection(indices):
    return SelectionResult(indices=np.asarray(indices, dtype=np.int64))


class TestRobustAggregators:

    def test_unanimous_uploads_reproduce_plain_mean(self):
        # With every client uploading the same support and values, every
        # robust center equals the per-uploader mean, and the support-
        # weight rescaling must reproduce the plain server's b_j exactly.
        uploads = [
            _upload(cid, [1, 4, 7], [0.5, -1.0, 2.0]) for cid in range(5)
        ]
        selection = _selection([1, 4, 7])
        reference = Server(16).aggregate(uploads, selection)
        for kind in ROBUST_KINDS:
            robust = build_aggregator(kind).aggregate(uploads, selection, 16)
            np.testing.assert_array_equal(
                robust.payload.to_dense(),
                reference.payload.to_dense(),
                err_msg=kind,
            )

    def test_trimmed_mean_rejects_outlier(self):
        aggregator = TrimmedMeanAggregator(trim_fraction=0.25)
        aggregator.clip_factor = None  # isolate the order statistic
        uploads = [_upload(c, [3], [1.0]) for c in range(4)]
        uploads.append(_upload(9, [3], [1000.0]))
        result = aggregator.aggregate(uploads, _selection([3]), 16)
        # trim = min(int(0.25·5), 2) = 1 each side -> mean of three 1.0s,
        # rescaled by the support-weight share (all 5 uploaded j).
        np.testing.assert_allclose(result.payload.to_dense()[3], 1.0)

    def test_median_ignores_minority(self):
        aggregator = MedianAggregator()
        aggregator.clip_factor = None
        uploads = [
            _upload(0, [3], [-500.0]), _upload(1, [3], [1.0]),
            _upload(2, [3], [1.0]), _upload(3, [3], [1.0]),
            _upload(4, [3], [500.0]),
        ]
        result = aggregator.aggregate(uploads, _selection([3]), 16)
        np.testing.assert_allclose(result.payload.to_dense()[3], 1.0)

    def test_norm_clipping_bounds_singleton_support(self):
        # A coordinate only the adversary uploaded has nothing to trim —
        # the norm clip is what bounds it to honest magnitude.
        honest = [_upload(c, [1], [1.0]) for c in range(4)]
        poisoned = _upload(9, [8], [100.0])
        aggregator = TrimmedMeanAggregator()
        result = aggregator.aggregate(
            honest + [poisoned], _selection([1, 8]), 16
        )
        dense = result.payload.to_dense()
        # clip bound = 2 × median norm = 2.0; the singleton coordinate's
        # center is at most that, times its 8/40 support-weight share.
        assert abs(dense[8]) <= 2.0 * (8.0 / 40.0) + 1e-12
        clipped = TrimmedMeanAggregator()
        clipped.clip_factor = None
        unbounded = clipped.aggregate(
            honest + [poisoned], _selection([1, 8]), 16
        )
        assert abs(unbounded.payload.to_dense()[8]) > abs(dense[8]) * 10

    def test_total_weight_seam(self):
        uploads = [_upload(c, [2], [1.0], samples=10) for c in range(3)]
        aggregator = MedianAggregator()
        arrived = aggregator.aggregate(
            uploads, _selection([2]), 16, total_weight=30.0
        )
        cohort = aggregator.aggregate(
            uploads, _selection([2]), 16, total_weight=60.0
        )
        np.testing.assert_allclose(
            cohort.payload.to_dense(), arrived.payload.to_dense() / 2.0
        )

    def test_cosine_downweights_persistent_opponent(self):
        aggregator = CosineReputationAggregator()
        selection = _selection([1, 4, 7])
        honest_values = np.array([1.0, -1.0, 0.5])
        for round_index in range(3):
            uploads = [
                _upload(c, [1, 4, 7], honest_values) for c in range(4)
            ] + [_upload(9, [1, 4, 7], -10.0 * honest_values)]
            result = aggregator.aggregate(uploads, selection, 16)
        assert aggregator.reputation[9] < 0.0
        assert all(aggregator.reputation[c] > 0.9 for c in range(4))
        assert [cid for cid, _ in aggregator.last_flags] == [9]
        # Weighted out entirely: the robust center equals the honest
        # value, and the support-weight rescaling cancels (all five
        # uploaded every coordinate), so the aggregate equals the mean
        # over the honest clients alone.
        reference = Server(16).aggregate(
            [_upload(c, [1, 4, 7], honest_values) for c in range(4)],
            selection,
        )
        np.testing.assert_allclose(
            result.payload.to_dense(), reference.payload.to_dense()
        )

    def test_commit_false_is_stateless(self):
        aggregator = CosineReputationAggregator()
        selection = _selection([1, 4])
        uploads = [
            _upload(0, [1, 4], [1.0, 2.0]),
            _upload(1, [1, 4], [1.2, 1.8]),
            _upload(2, [1, 4], [0.8, 2.2]),
            _upload(9, [1, 4], [-30.0, -60.0]),
        ]
        aggregator.aggregate(uploads, selection, 16)
        reputation = dict(aggregator.reputation)
        flags = list(aggregator.last_flags)
        assert flags  # the opponent was flagged on the committed round
        # A counterfactual probe (deadline re-aggregation) must read the
        # current reputations without advancing the EMA or overwriting
        # the committed round's flags.
        aggregator.aggregate(uploads[:3], selection, 16, commit=False)
        assert aggregator.reputation == reputation
        assert aggregator.last_flags == flags
        # Committing that same honest-only round, by contrast, advances
        # the EMA (the reference median shifts without the opponent).
        aggregator.aggregate(uploads[:3], selection, 16)
        assert aggregator.reputation != reputation

    def test_rank_flags_need_eligible_coordinates(self):
        # Two uploaders per coordinate: no trimming tail exists, so the
        # rank detector must stay silent rather than guess.
        aggregator = TrimmedMeanAggregator()
        uploads = [
            _upload(0, [1, 2, 3, 4, 5], [1.0] * 5),
            _upload(9, [1, 2, 3, 4, 5], [900.0] * 5),
        ]
        aggregator.aggregate(uploads, _selection([1, 2, 3, 4, 5]), 16)
        assert aggregator.last_flags == []

    def test_empty_selection_and_errors(self):
        aggregator = MedianAggregator()
        result = aggregator.aggregate(
            [_upload(0, [1], [1.0])], _selection([]), 16
        )
        assert result.payload.indices.size == 0
        with pytest.raises(ValueError, match="no uploads"):
            aggregator.aggregate([], _selection([1]), 16)
        with pytest.raises(ValueError, match="total_weight"):
            aggregator.aggregate(
                [_upload(0, [1], [1.0])], _selection([1]), 16,
                total_weight=0.0,
            )

    def test_build_aggregator_mapping(self):
        assert build_aggregator("mean") is None
        assert isinstance(
            build_aggregator("trimmed_mean", trim_fraction=0.1),
            TrimmedMeanAggregator,
        )
        assert build_aggregator("trimmed_mean", 0.1).trim_fraction == 0.1
        assert isinstance(build_aggregator("median"), MedianAggregator)
        assert isinstance(
            build_aggregator("cosine"), CosineReputationAggregator
        )
        with pytest.raises(ValueError, match="unknown aggregator"):
            build_aggregator("krum")

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="trim_fraction"):
            TrimmedMeanAggregator(trim_fraction=0.5)
        with pytest.raises(ValueError, match="flag_threshold"):
            TrimmedMeanAggregator(flag_threshold=0.0)
        with pytest.raises(ValueError, match="memory"):
            CosineReputationAggregator(memory=1.0)


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestAdversaryConfig:

    def test_roundtrip(self):
        config = ScenarioConfig(
            availability="always", adversary="noise",
            adversary_fraction=0.2, adversary_scale=5.0,
            aggregator="cosine", trim_fraction=0.1, seed=4,
        )
        assert ScenarioConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            ScenarioConfig(adversary="dos")
        with pytest.raises(ValueError, match="needs an adversary kind"):
            ScenarioConfig(adversary_fraction=0.5)
        with pytest.raises(ValueError, match="adversary_fraction"):
            ScenarioConfig(adversary="scale", adversary_fraction=1.5)
        with pytest.raises(ValueError, match="adversary_scale"):
            ScenarioConfig(adversary="scale", adversary_fraction=0.5,
                           adversary_scale=0.0)
        with pytest.raises(ValueError, match="unknown aggregator"):
            ScenarioConfig(aggregator="krum")
        with pytest.raises(ValueError, match="trim_fraction"):
            ScenarioConfig(trim_fraction=0.5)

    def test_build_threads_adversary_and_aggregator(self):
        trainer, scenario = _scenario_trainer("serial")
        assert scenario.hooks.adversary is not None
        assert scenario.hooks.adversary.kind == "sign_flip"
        assert isinstance(scenario.aggregator, TrimmedMeanAggregator)
        assert trainer.engine.server.aggregator is scenario.aggregator


# ----------------------------------------------------------------------
# Acceptance (a): attack x defense backend bit-identity
# ----------------------------------------------------------------------
_SERIAL_CACHE = {}


def _serial_reference(attack, aggregator):
    key = (attack, aggregator)
    if key not in _SERIAL_CACHE:
        config = ATTACK_CHURN.with_overrides(
            adversary=attack, aggregator=aggregator
        )
        trainer, scenario = _scenario_trainer(
            "serial", scenario_config=config
        )
        history = trainer.run(6, k=12)
        _SERIAL_CACHE[key] = (trainer, scenario, history)
    return _SERIAL_CACHE[key]


class TestAttackDefenseBackendEquivalence:
    """Acceptance (a): the bit-identity matrix extends over attacks."""

    @pytest.mark.parametrize("backend_name", ["vectorized", "sharded"])
    @pytest.mark.parametrize("aggregator", ROBUST_KINDS)
    def test_sign_flip_histories_identical(self, aggregator, backend_name):
        self._assert_identical("sign_flip", aggregator, backend_name)

    @pytest.mark.parametrize("attack", ("scale", "noise", "topk"))
    def test_other_attacks_identical(self, attack):
        self._assert_identical(attack, "trimmed_mean", "vectorized")

    def test_mean_under_attack_identical(self):
        # The vulnerable aggregator must *also* be deterministic — the
        # panel's divergent mean curves are still bit-reproducible.
        self._assert_identical("sign_flip", "mean", "vectorized")

    def _assert_identical(self, attack, aggregator, backend_name):
        serial, s_scn, hs = _serial_reference(attack, aggregator)
        backend = (
            ShardedBackend(jobs=2) if backend_name == "sharded"
            else backend_name
        )
        config = ATTACK_CHURN.with_overrides(
            adversary=attack, aggregator=aggregator
        )
        fast, f_scn = _scenario_trainer(backend, scenario_config=config)
        hf = fast.run(6, k=12)
        assert history_rows(hs) == history_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)
        assert s_scn.stats.corrupted_by_client == \
            f_scn.stats.corrupted_by_client
        assert s_scn.stats.corrupted_by_client  # the attack actually ran
        assert s_scn.stats.flagged_by_client == f_scn.stats.flagged_by_client
        fast.close()


# ----------------------------------------------------------------------
# Acceptance (b): residual honesty and exact poisoned recovery
# ----------------------------------------------------------------------
class TestResidualHonesty:

    def test_residuals_hold_honest_gradients_despite_corruption(self):
        # Corruption is wire-only: after round 1, EVERY client's residual
        # equals its honest gradient with zeros exactly at J ∩ J_i (the
        # server-selected coordinates it uploaded) — never the ×(−10)
        # poisoned values — while the adversaries' wire uploads carry the
        # poison.  (Note the attacked run's J itself may legitimately
        # differ from an honest run's: selection ranks the corrupted
        # values.  The invariant is about state, not about J.)
        attacked, a_scn = _scenario_trainer(
            "serial", scenario_config=ATTACK_CHURN.with_overrides(
                availability="always", participants=0, over_selection=0.0,
                deadline=None, deadline_policy="fixed", slow_fraction=0.0,
            )
        )
        adversary = a_scn.hooks.adversary
        assert adversary is not None

        class Recorder(RoundHooks):
            def after_local_steps(self, ctx):
                self.wire = {
                    up.client_id: up.payload for up in ctx.uploads
                }

            def after_aggregate(self, ctx):
                self.selection = ctx.selection.indices
                # Scenario hooks restored the honest payloads first.
                self.restored = {
                    up.client_id: up.payload for up in ctx.uploads
                }

        recorder = Recorder()
        w0 = attacked.model.get_weights()
        # Honest replica of every client's round-1 gradient at w0.
        twin = _federation(seed=5)
        ref_model = make_mlp(64, 8, hidden=(10,), seed=5)
        gradients = {}
        for client in twin.clients:
            x, y = client.minibatch(8)
            ref_model.set_weights(w0)
            gradients[client.client_id], _ = ref_model.gradient(x, y)

        attacked.engine.run_round(12, hooks=recorder)
        assert a_scn.stats.corrupted_by_client  # someone was designated
        saw_adversary = False
        for client in attacked.clients:
            cid = client.client_id
            g = gradients[cid]
            uploaded = recorder.wire[cid].indices
            if adversary.is_adversary(cid):
                saw_adversary = True
                # The wire carried the poison...
                np.testing.assert_array_equal(
                    recorder.wire[cid].values, -10.0 * g[uploaded]
                )
            else:
                np.testing.assert_array_equal(
                    recorder.wire[cid].values, g[uploaded]
                )
            # ...and the restored upload is honest either way.
            np.testing.assert_array_equal(
                recorder.restored[cid].values, g[uploaded]
            )
            expected = g.copy()
            expected[np.intersect1d(recorder.selection, uploaded)] = 0.0
            np.testing.assert_array_equal(client.residual, expected)
        assert saw_adversary

    def test_dropped_poisoned_gradient_recovers_exactly(self):
        # The straggler is ALSO the adversary (seed 1 designates client
        # 1).  Round 1's tight deadline drops its poisoned upload; the
        # residual keeps the HONEST gradient g1; round 2's amnesty
        # re-sends — and the wire carries the attack applied to the
        # honestly accumulated g1 + g2, exactly.
        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(6,), seed=11)
        ids = [c.client_id for c in fed.clients]
        profiles = [
            ClientProfile(ids[0]),
            ClientProfile(ids[1], compute_factor=50.0, comm_factor=50.0),
        ]
        config = ScenarioConfig(
            availability="always", deadline=(3.0, 1000.0),
            adversary="sign_flip", adversary_fraction=0.3,
            adversary_scale=10.0, aggregator="trimmed_mean", seed=1,
        )
        timing = TimingModel(model.dimension, comm_time=10.0)
        scenario = DeploymentScenario.build(config, ids, timing, profiles)
        assert scenario.hooks.adversary.is_adversary(ids[1])
        assert not scenario.hooks.adversary.is_adversary(ids[0])
        trainer = FLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=1, seed=11, scenario=scenario,
        )
        straggler = trainer.clients[1]
        dimension = trainer.model.dimension
        w0 = trainer.model.get_weights()
        twin = _federation(seed=11, num_writers=2).clients[1]
        ref_model = make_mlp(64, 8, hidden=(6,), seed=11)

        class Recorder(RoundHooks):
            def __init__(self):
                self.uploads_by_round = {}

            def after_local_steps(self, ctx):
                # Scenario hooks run first: this is the corrupted wire.
                self.uploads_by_round[ctx.round_index] = list(ctx.uploads)

        recorder = Recorder()
        # ---- round 1: the poisoned upload is deadline-dropped ----
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[0].dropped_ids == (ids[1],)
        # Only the honest client's upload survived to the hooks.
        assert [
            up.client_id for up in recorder.uploads_by_round[1]
        ] == [ids[0]]
        x1, y1 = twin.minibatch(8)
        ref_model.set_weights(w0)
        g1, _ = ref_model.gradient(x1, y1)
        # The corruption was charged (it happened before the drop) but
        # the residual kept the HONEST g1, not the ×(−10) poison.
        np.testing.assert_array_equal(straggler.residual, g1)

        # ---- round 2: amnesty — the recovered upload re-enters ----
        w1 = trainer.model.get_weights()
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[1].dropped_ids == ()
        x2, y2 = twin.minibatch(8)
        ref_model.set_weights(w1)
        g2, _ = ref_model.gradient(x2, y2)
        wire2 = {
            up.client_id: up for up in recorder.uploads_by_round[2]
        }[ids[1]]
        # Exact recovery THROUGH the attack: honest residual
        # accumulation (g1 + g2), sign-flipped on the wire only.
        np.testing.assert_array_equal(
            wire2.payload.to_dense(), -10.0 * (g1 + g2)
        )
        # k = D drained the (honest) residual completely.
        np.testing.assert_array_equal(
            straggler.residual, np.zeros(dimension)
        )
        assert scenario.stats.corrupted_by_client == {ids[1]: 2}


# ----------------------------------------------------------------------
# Acceptance (c): degenerate identity
# ----------------------------------------------------------------------
class TestDegenerateAdversary:

    def test_none_plus_mean_is_plain_trainer(self):
        fed = _federation()
        model = make_mlp(64, 8, hidden=(10,), seed=5)
        timing = TimingModel(model.dimension, comm_time=10.0)
        plain = FLTrainer(model, fed, FABTopK(), timing=timing,
                          learning_rate=0.05, batch_size=8, eval_every=3,
                          seed=5)
        idle = ScenarioConfig(
            availability="always", deadline=None, participants=0,
            slow_fraction=0.0, adversary="none", adversary_fraction=0.0,
            aggregator="mean", seed=5,
        )
        wrapped, scenario = _scenario_trainer("serial",
                                              scenario_config=idle)
        # "mean" builds no aggregator object and "none" no adversary —
        # the original code paths run, not equivalent reimplementations.
        assert scenario.aggregator is None
        assert scenario.hooks.adversary is None
        assert wrapped.engine.server.aggregator is None
        hp = plain.run(8, k=12)
        hw = wrapped.run(8, k=12)
        assert history_rows(hp) == history_rows(hw)
        np.testing.assert_array_equal(
            plain.model.get_weights(), wrapped.model.get_weights()
        )
        for cp, cw in zip(plain.clients, wrapped.clients):
            np.testing.assert_array_equal(cp.residual, cw.residual)


# ----------------------------------------------------------------------
# Flagged telemetry
# ----------------------------------------------------------------------
class TestFlaggedTelemetry:

    def test_event_type_registered(self):
        assert EVENT_TYPES["flagged"] == frozenset(
            {"round", "client_ids", "detector", "scores"}
        )

    def test_flagged_events_validate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = open_telemetry(str(path))
        config = ATTACK_CHURN.with_overrides(
            availability="always", participants=0, over_selection=0.0,
            deadline=None, deadline_policy="fixed", slow_fraction=0.0, seed=0,
        )
        fed = _federation(seed=0)
        model = make_mlp(64, 8, hidden=(10,), seed=0)
        ids = [c.client_id for c in fed.clients]
        profiles = config.build_profiles(ids)
        timing = TimingModel(model.dimension, comm_time=10.0)
        scenario = DeploymentScenario.build(config, ids, timing, profiles)
        trainer = FLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=1, seed=0, scenario=scenario,
            telemetry=telemetry,
        )
        trainer.run(3, k=400)  # dense-leaning k: flags fire every round
        telemetry.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        for event in events:
            validate_event(event)
        flagged = [e for e in events if e["type"] == "flagged"]
        assert len(flagged) == 3
        for event in flagged:
            assert event["detector"] == "trimmed_mean"
            assert len(event["scores"]) == len(event["client_ids"])
            assert all(isinstance(c, int) for c in event["client_ids"])
        # The true adversary (seed 0 designates client 6) is flagged in
        # every round; telemetry and stats agree.
        assert all(6 in e["client_ids"] for e in flagged)
        assert scenario.stats.flagged_by_client[6] == 3

    def test_no_flags_without_telemetry_or_detector(self):
        # Honest run under a robust aggregator: stats may flag (noisy
        # detector) but the degenerate mean path never does.
        trainer, scenario = _scenario_trainer(
            "serial", scenario_config=ATTACK_CHURN.with_overrides(
                adversary="none", adversary_fraction=0.0, aggregator="mean",
            )
        )
        trainer.run(3, k=12)
        assert scenario.stats.flagged_by_client == {}
        assert scenario.stats.corrupted_by_client == {}


# ----------------------------------------------------------------------
# Acceptance (d): golden adversarial history
# ----------------------------------------------------------------------
def _golden_adversary_trainer():
    """The pinned attacked run: Markov churn + cycling deadline +
    sign-flip adversaries + trimmed-mean defense at tiny scale.  This
    construction must not change, or the golden loses its meaning."""
    config = ScenarioConfig(
        availability="markov",
        p_drop=0.2,
        p_recover=0.6,
        participants=4,
        over_selection=0.5,
        deadline=(2.5, 2.5, 9.0),
        deadline_policy="cycling",
        slow_fraction=0.25,
        slow_factor=4.0,
        adversary="sign_flip",
        adversary_fraction=0.3,
        adversary_scale=10.0,
        aggregator="trimmed_mean",
        trim_fraction=0.25,
        seed=3,
    )
    fed = _federation(seed=3, num_writers=6)
    model = make_mlp(64, 8, hidden=(6,), seed=3)
    ids = [c.client_id for c in fed.clients]
    profiles = config.build_profiles(ids)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    scenario = DeploymentScenario.build(config, ids, timing, profiles)
    trainer = FLTrainer(
        model, fed, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=8, eval_every=2, seed=3, scenario=scenario,
    )
    return trainer, scenario


class TestGoldenAdversaryHistory:
    """Acceptance (d): attack + defense semantics are pinned absolutely.

    Cross-backend equality cannot catch a change that moves every
    backend together (a different trim boundary, a re-ordered corruption
    seam, a changed designation draw); this golden does.
    """

    def test_history_matches_golden(self):
        trainer, _ = _golden_adversary_trainer()
        trainer.run(6, k=10)
        golden = json.loads(GOLDEN_PATH.read_text())["adversary_fl_trainer"]
        expected = [
            (row["round_index"], row["k"], row["round_time"],
             row["cumulative_time"], row["loss"], row["accuracy"],
             row["uplink_elements"], row["downlink_elements"],
             tuple(
                 (int(cid), n) for cid, n in sorted(
                     row["contributions"].items(), key=lambda kv: int(kv[0])
                 )
             ))
            for row in golden
        ]
        assert history_rows(trainer.history) == expected

    def test_corruption_and_flags_match_golden(self):
        trainer, scenario = _golden_adversary_trainer()
        trainer.run(6, k=10)
        golden = json.loads(GOLDEN_PATH.read_text())
        stats = scenario.stats.to_dict()
        assert stats["corrupted_by_client"] == \
            golden["adversary_fl_trainer_corrupted"]
        assert stats["flagged_by_client"] == \
            golden["adversary_fl_trainer_flagged"]
        assert stats["corrupted_by_client"]  # the attack really fired


# ----------------------------------------------------------------------
# Panel driver, CLI and sweep threading
# ----------------------------------------------------------------------
class TestAdversaryPanel:

    @pytest.fixture(scope="class")
    def panel(self):
        from repro.experiments.adversary import run_adversary_panel
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.smoke().with_overrides(num_rounds=15)
        return config, run_adversary_panel(config)

    def test_grid_structure(self, panel):
        config, result = panel
        labels = {s.label for s in result.final_loss.series}
        assert labels == {
            f"{agg} ({regime})"
            for agg in ("mean", "trimmed_mean", "median")
            for regime in ("sparse", "dense")
        }
        assert len(result.histories) == 18  # 3 aggregators x 2 x 3 fractions
        for series in result.final_loss.series:
            assert series.x == [0.0, 0.25, 0.5]
        assert result.attack == "sign_flip"

    def test_defenses_recover_where_mean_diverges(self, panel):
        config, result = panel
        for regime in ("sparse", "dense"):
            mean = result.final_losses("mean", regime)
            trimmed = result.final_losses("trimmed_mean", regime)
            median = result.final_losses("median", regime)
            # Honest baseline: all defenses near the mean's loss.
            assert trimmed[0] < mean[0] * 1.5
            # Heavy attack: the mean diverges, robust defenses hold
            # near their honest-baseline loss.
            assert mean[-1] > 2.0 * trimmed[-1], regime
            assert mean[-1] > 2.0 * median[-1], regime
            assert trimmed[-1] < trimmed[0] * 1.5, regime

    def test_degenerate_cell_is_plain_trainer(self, panel):
        config, result = panel
        from repro.experiments.runner import build_federation, build_model

        model = build_model(config)
        federation = build_federation(config)
        timing = TimingModel(model.dimension, comm_time=config.comm_time)
        plain = FLTrainer(
            model, federation, FABTopK(), timing=timing,
            learning_rate=config.learning_rate,
            batch_size=config.batch_size, eval_every=config.eval_every,
            eval_max_samples=config.eval_max_samples, seed=config.seed,
        )
        plain.run(config.num_rounds, k=result.k)
        cell = result.histories[
            result.cell_label("mean", "sparse", 0.0)
        ]
        assert history_rows(plain.history) == history_rows(cell)

    def test_resolver_defaults_to_always_available(self):
        from repro.experiments.adversary import resolve_adversary_config
        from repro.experiments.config import ExperimentConfig

        resolved = resolve_adversary_config(ExperimentConfig.smoke())
        scenario = ScenarioConfig.from_dict(resolved.scenario)
        assert scenario.availability == "always"
        assert scenario.deadline is None

    def test_named_fraction_and_aggregator_join_the_grid(self):
        from repro.experiments.adversary import run_adversary_panel
        from repro.experiments.config import ExperimentConfig

        scenario = ScenarioConfig(
            availability="always", adversary="scale",
            adversary_fraction=0.4, aggregator="cosine", seed=0,
        )
        config = ExperimentConfig.smoke().with_overrides(
            num_rounds=2, scenario=scenario.to_dict(),
        )
        result = run_adversary_panel(
            config, fractions=(0.0, 0.5), aggregators=("mean",),
            regimes=("sparse",),
        )
        assert result.attack == "scale"
        labels = {s.label for s in result.final_loss.series}
        assert labels == {"mean (sparse)", "cosine (sparse)"}
        for series in result.final_loss.series:
            assert series.x == [0.0, 0.4, 0.5]


class TestAdversaryCLI:

    def test_scenario_flags_thread_into_config(self):
        from repro.cli import _scenario_overrides, build_parser

        args = build_parser().parse_args([
            "scenario", "--adversary-fraction", "0.5",
            "--aggregator", "median", "--trim-fraction", "0.1",
        ])
        scenario = ScenarioConfig.from_dict(_scenario_overrides(args, 7))
        # A positive fraction implies the headline attack.
        assert scenario.adversary == "sign_flip"
        assert scenario.adversary_fraction == 0.5
        assert scenario.aggregator == "median"
        assert scenario.trim_fraction == 0.1
        assert scenario.seed == 7

    def test_explicit_kind_kept(self):
        from repro.cli import _scenario_overrides, build_parser

        args = build_parser().parse_args([
            "adversary", "--adversary-kind", "noise",
            "--adversary-fraction", "0.3", "--adversary-scale", "2.0",
        ])
        scenario = ScenarioConfig.from_dict(
            _scenario_overrides(
                args, 0, base=ScenarioConfig(availability="always")
            )
        )
        assert scenario.availability == "always"
        assert scenario.adversary == "noise"
        assert scenario.adversary_scale == 2.0

    def test_adversary_command_writes_artifacts(self, tmp_path):
        from repro.cli import main

        rc = main([
            "adversary", "--scale", "smoke", "--rounds", "2",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        final = json.loads(
            (tmp_path / "adversary_final_loss.json").read_text()
        )
        assert final["kind"] == "figure"
        assert (tmp_path / "adversary_loss_vs_time.json").exists()
        assert (tmp_path / "adversary_final_loss.csv").exists()
        histories = list(tmp_path.glob("adversary_history_*.json"))
        assert len(histories) == 18

    def test_scenario_command_accepts_adversary_flags(self, tmp_path):
        from repro.cli import main

        rc = main([
            "scenario", "--scale", "smoke", "--rounds", "2",
            "--adversary-fraction", "0.5", "--aggregator",
            "trimmed_mean", "--out", str(tmp_path),
        ])
        assert rc == 0
        payload = json.loads(
            (tmp_path / "scenario_loss_vs_time.json").read_text()
        )
        note = next(n for n in payload["notes"] if "adversary" in n)
        assert '"adversary": "sign_flip"' in note

    def test_sweep_includes_adversary(self):
        from repro.experiments.config import ExperimentConfig
        from repro.parallel.sweep import (
            SWEEP_FIGURES, SweepSpec, collect_artifacts,
        )

        assert "adversary" in SWEEP_FIGURES
        SweepSpec(figures=("adversary",))  # validates
        config = ExperimentConfig.smoke().with_overrides(num_rounds=2)
        artifacts = collect_artifacts("adversary", config)
        assert "adversary_final_loss" in artifacts
        assert "adversary_loss_vs_time" in artifacts
        assert sum(
            1 for name in artifacts if name.startswith("adversary_history_")
        ) == 18
        for payload in artifacts.values():
            json.dumps(payload)  # artifacts must be JSON-ready
