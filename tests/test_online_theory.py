"""Empirical verification of the paper's theorems on synthetic costs.

Theorem 1: Algorithm 2 with exact derivative signs has regret
R(M) ≤ GB√(2M) on any cost sequence satisfying Assumption 2.

Theorem 2: with a noisy sign satisfying conditions (6)–(7),
E[R(M)] ≤ GHB√(2M).

These tests drive the algorithms against the synthetic Assumption-2
oracles from repro.simulation.cost and check the bounds directly, plus the
sublinearity of regret growth.
"""

import numpy as np
import pytest

from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.interval import SearchInterval
from repro.online.regret import (
    empirical_regret,
    restart_is_beneficial,
    theorem1_bound,
    theorem2_bound,
    two_instance_bound,
)
from repro.simulation.cost import NoisySignOracle, QuadraticCost, TimePerLossCost


def run_sign_ogd(oracle, interval, M, k1=None, sign_source=None, algorithm=None):
    """Drive Algorithm 2/3 against a cost oracle; return decision list."""
    alg = algorithm if algorithm is not None else SignOGD(interval, k1=k1)
    ks = []
    for m in range(1, M + 1):
        k = alg.k
        ks.append(k)
        s = (sign_source or oracle).sign(k, m)
        alg.update(s)
    return ks


class TestTheorem1:
    @pytest.mark.parametrize("k_star", [20.0, 150.0, 400.0])
    def test_regret_below_bound_quadratic(self, k_star):
        K = SearchInterval(1.0, 501.0)
        oracle = QuadraticCost(k_star=k_star, kmax=K.kmax, seed=0)
        M = 400
        ks = run_sign_ogd(oracle, K, M, k1=250.0)
        regret = oracle.regret(ks, K.kmin, K.kmax)
        bound = theorem1_bound(oracle.derivative_bound, K.width, M)
        assert regret <= bound
        assert regret >= -1e-6  # optimum in hindsight can't be beaten

    def test_regret_below_bound_time_per_loss(self):
        K = SearchInterval(2.0, 1000.0)
        oracle = TimePerLossCost(dimension=1000, comm_time=10.0,
                                 round_scale_jitter=0.2, seed=1)
        M = 500
        ks = run_sign_ogd(oracle, K, M, k1=800.0)
        regret = oracle.regret(ks, K.kmin, K.kmax)
        bound = theorem1_bound(oracle.derivative_bound, K.width, M)
        assert 0 <= regret <= bound

    def test_decisions_approach_optimum(self):
        K = SearchInterval(1.0, 501.0)
        oracle = QuadraticCost(k_star=77.0, kmax=K.kmax, seed=2)
        ks = run_sign_ogd(oracle, K, 1000, k1=450.0)
        tail = np.array(ks[-100:])
        assert np.abs(tail - 77.0).mean() < 25.0

    def test_regret_growth_is_sublinear(self):
        # R(M)/M must decrease as M grows (time-averaged regret -> 0).
        K = SearchInterval(1.0, 201.0)
        oracle = QuadraticCost(k_star=60.0, kmax=K.kmax, seed=3)
        ks = run_sign_ogd(oracle, K, 1600, k1=180.0)
        r_400 = oracle.regret(ks[:400], K.kmin, K.kmax) / 400
        r_1600 = oracle.regret(ks, K.kmin, K.kmax) / 1600
        assert r_1600 < r_400

    def test_bound_formula(self):
        assert theorem1_bound(2.0, 3.0, 8) == pytest.approx(2 * 3 * 4.0)
        with pytest.raises(ValueError):
            theorem1_bound(-1.0, 1.0, 1)


class TestTheorem2:
    def test_noisy_sign_regret_below_bound(self):
        K = SearchInterval(1.0, 501.0)
        base = QuadraticCost(k_star=120.0, kmax=K.kmax, seed=4)
        M = 400
        regrets = []
        for trial in range(5):
            noisy = NoisySignOracle(base, flip_probability=0.2, seed=trial)
            ks = run_sign_ogd(base, K, M, k1=400.0, sign_source=noisy)
            regrets.append(base.regret(ks, K.kmin, K.kmax))
        mean_regret = float(np.mean(regrets))
        bound = theorem2_bound(
            base.derivative_bound, NoisySignOracle(base, 0.2).H, K.width, M
        )
        assert mean_regret <= bound

    def test_noise_degrades_but_still_converges(self):
        K = SearchInterval(1.0, 301.0)
        base = QuadraticCost(k_star=50.0, kmax=K.kmax, seed=5)
        noisy = NoisySignOracle(base, flip_probability=0.3, seed=0)
        ks = run_sign_ogd(base, K, 2000, k1=250.0, sign_source=noisy)
        assert abs(np.mean(ks[-200:]) - 50.0) < 40.0

    def test_bound_formula(self):
        assert theorem2_bound(1.0, 2.0, 3.0, 8) == pytest.approx(2 * 3 * 4.0)
        with pytest.raises(ValueError):
            theorem2_bound(1.0, 0.5, 1.0, 1)


class TestAlgorithm3Theory:
    def test_algorithm3_regret_no_worse_than_bound(self):
        K = SearchInterval(1.0, 1001.0)
        oracle = TimePerLossCost(dimension=1000, comm_time=100.0, seed=6)
        M = 600
        alg = AdaptiveSignOGD(K, k1=900.0, alpha=1.5, update_window=20)
        ks = run_sign_ogd(oracle, K, M, algorithm=alg)
        regret = oracle.regret(ks, K.kmin, K.kmax)
        bound = theorem1_bound(oracle.derivative_bound, K.width, M)
        assert regret <= bound

    def test_algorithm3_beats_algorithm2_on_small_optimum(self):
        # Large comm time -> small k*; Alg 3's shrinking interval should
        # fluctuate less and accumulate no more regret than Alg 2.
        K = SearchInterval(1.0, 1001.0)
        oracle = TimePerLossCost(dimension=1000, comm_time=100.0,
                                 round_scale_jitter=0.1, seed=7)
        M = 800
        ks2 = run_sign_ogd(oracle, K, M, k1=500.0)
        alg3 = AdaptiveSignOGD(K, k1=500.0, alpha=1.5, update_window=20)
        ks3 = run_sign_ogd(oracle, K, M, algorithm=alg3)
        r2 = oracle.regret(ks2, K.kmin, K.kmax)
        r3 = oracle.regret(ks3, K.kmin, K.kmax)
        assert r3 <= r2 * 1.05  # allow tiny slack for the restart rounds
        # Fluctuation comparison on the tail.
        assert np.std(ks3[-200:]) <= np.std(ks2[-200:]) + 1e-9

    def test_restart_criterion(self):
        assert restart_is_beneficial(100.0, 40.0)
        assert not restart_is_beneficial(100.0, 42.0)

    def test_two_instance_bound_consistency(self):
        # When B' < (√2−1)B and M''=M', the split bound beats single-run.
        G, H, B, Bp, M = 1.0, 1.0, 100.0, 40.0, 200
        split = two_instance_bound(G, H, B, M, Bp, M)
        single = theorem1_bound(G, B, 2 * M)
        assert split < single

    def test_empirical_regret_helper(self):
        assert empirical_regret([3.0, 4.0], [1.0, 2.0]) == 4.0
        with pytest.raises(ValueError):
            empirical_regret([1.0], [1.0, 2.0])


class TestSqrtMScaling:
    def test_regret_scales_like_sqrt_m(self):
        # Fit regret(M) ~ c*M^p on the quadratic oracle; p should be
        # well below 1 (sublinear) and near 0.5.
        K = SearchInterval(1.0, 201.0)
        oracle = QuadraticCost(k_star=60.0, kmax=K.kmax, seed=8)
        Ms = [100, 400, 1600]
        regrets = []
        for M in Ms:
            ks = run_sign_ogd(oracle, K, M, k1=180.0)
            regrets.append(max(oracle.regret(ks, K.kmin, K.kmax), 1e-9))
        p = np.polyfit(np.log(Ms), np.log(regrets), 1)[0]
        assert p < 0.8
