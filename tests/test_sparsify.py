"""Tests for the sparsification package.

The key properties tested here are the ones the paper claims:

- FAB-top-k returns exactly min(k, |union of uploads|) indices.
- Fairness: every client's top-⌊k/N⌋ uploaded indices appear in the
  selection (hence each client contributes at least ⌊k/N⌋ elements).
- FUB-top-k can starve a client entirely; FAB cannot.
- Unidirectional downlink grows up to k·N.
- Periodic-k covers every coordinate within ⌈D/k⌉ rounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsify.base import ClientUpload, SelectionResult, SparseVector
from repro.sparsify.fab_topk import FABTopK, fair_select
from repro.sparsify.fub_topk import FUBTopK
from repro.sparsify.periodic import PeriodicK
from repro.sparsify.topk import (
    ranked_indices,
    top_k_indices,
    top_k_indices_batched,
)
from repro.sparsify.unidirectional import UnidirectionalTopK

RNG = np.random.default_rng(3)


def make_upload(client_id, dense, k, weight=1):
    dense = np.asarray(dense, dtype=float)
    idx = top_k_indices(dense, k)
    return ClientUpload(
        client_id=client_id,
        payload=SparseVector.from_dense(dense, idx),
        sample_count=weight,
    )


class TestTopKIndices:
    def test_basic(self):
        v = np.array([0.1, -5.0, 3.0, 0.0, 4.0])
        np.testing.assert_array_equal(top_k_indices(v, 2), [1, 4])

    def test_k_zero_and_negative(self):
        v = np.array([1.0, 2.0])
        assert top_k_indices(v, 0).size == 0
        assert top_k_indices(v, -3).size == 0

    def test_k_ge_n_returns_all(self):
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(top_k_indices(v, 5), [0, 1, 2])

    def test_tie_break_by_index(self):
        v = np.array([2.0, -2.0, 2.0, 1.0])
        np.testing.assert_array_equal(top_k_indices(v, 2), [0, 1])

    def test_uses_absolute_value(self):
        v = np.array([-10.0, 1.0, 2.0])
        assert 0 in top_k_indices(v, 1)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_matches_full_sort(self, k, seed):
        rng = np.random.default_rng(seed)
        v = rng.standard_normal(137)
        got = top_k_indices(v, k)
        expected = np.sort(np.lexsort((np.arange(137), -np.abs(v)))[: min(k, 137)])
        np.testing.assert_array_equal(got, expected)

    def test_ranked_indices_order(self):
        v = np.array([1.0, -3.0, 2.0])
        np.testing.assert_array_equal(ranked_indices(v), [1, 2, 0])

    def test_ranked_indices_limit(self):
        v = RNG.standard_normal(50)
        assert ranked_indices(v, limit=5).size == 5

    # ------------------------------------------------------------------
    # The argpartition prefilter must return byte-identical index sets to
    # the full lexsort reference — including on adversarial inputs where
    # the k-boundary is one big magnitude tie.
    # ------------------------------------------------------------------
    @staticmethod
    def _lexsort_reference(v, k):
        n = v.shape[0]
        order = np.lexsort((np.arange(n), -np.abs(v)))
        return np.sort(order[: max(0, min(k, n))])

    @given(
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_full_sort_under_duplicate_magnitudes(self, k, seed):
        rng = np.random.default_rng(seed)
        # Values drawn from a tiny alphabet: ties everywhere, including
        # sign pairs (+1/-1) with equal magnitude and exact zeros.
        v = rng.choice([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0], size=61)
        np.testing.assert_array_equal(
            top_k_indices(v, k), self._lexsort_reference(v, k)
        )

    def test_all_equal_magnitudes_pick_lowest_indices(self):
        v = -np.ones(40)
        np.testing.assert_array_equal(top_k_indices(v, 7), np.arange(7))

    @pytest.mark.parametrize("k", [0, 1, 6, 29, 30, 31, 100])
    def test_batched_matches_lexsort_on_ties(self, k):
        rng = np.random.default_rng(9)
        values = rng.choice([-1.0, 0.0, 0.5, 1.0], size=(13, 30))
        batched = top_k_indices_batched(values, k)
        for row in range(values.shape[0]):
            np.testing.assert_array_equal(
                batched[row], self._lexsort_reference(values[row], k)
            )

    @given(
        st.integers(min_value=0, max_value=35),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_ranked_indices_limit_is_exact_prefix(self, limit, seed):
        rng = np.random.default_rng(seed)
        v = rng.choice([-1.0, 0.0, 0.25, 1.0], size=33)
        full = np.lexsort((np.arange(v.size), -np.abs(v)))
        np.testing.assert_array_equal(ranked_indices(v, limit=limit), full[:limit])


class TestSparseVector:
    def test_dense_roundtrip(self):
        dense = np.array([0.0, 1.5, 0.0, -2.0])
        sv = SparseVector.from_dense(dense, np.array([1, 3]))
        np.testing.assert_allclose(sv.to_dense(), [0.0, 1.5, 0.0, -2.0])

    def test_sorts_indices(self):
        sv = SparseVector(np.array([3, 1]), np.array([30.0, 10.0]), 5)
        np.testing.assert_array_equal(sv.indices, [1, 3])
        np.testing.assert_array_equal(sv.values, [10.0, 30.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1, 1]), np.array([1.0, 2.0]), 5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([5]), np.array([1.0]), 5)
        with pytest.raises(ValueError):
            SparseVector(np.array([-1]), np.array([1.0]), 5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1, 2]), np.array([1.0]), 5)

    def test_nnz(self):
        sv = SparseVector(np.array([0, 2]), np.array([1.0, 2.0]), 4)
        assert sv.nnz == 2


class TestSelectionResult:
    def test_sorts_and_defaults(self):
        r = SelectionResult(indices=np.array([4, 1, 2]))
        np.testing.assert_array_equal(r.indices, [1, 2, 4])
        assert r.downlink_element_count == 3

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            SelectionResult(indices=np.array([1, 1]))


class TestClientUpload:
    def test_positive_weight_required(self):
        sv = SparseVector(np.array([0]), np.array([1.0]), 3)
        with pytest.raises(ValueError):
            ClientUpload(client_id=0, payload=sv, sample_count=0)


class TestFABTopK:
    def test_exact_k_selected(self):
        d = 40
        uploads = [make_upload(i, RNG.standard_normal(d), 10) for i in range(4)]
        result = FABTopK().server_select(uploads, k=10, dimension=d)
        assert result.indices.size == 10

    def test_union_smaller_than_k(self):
        d = 20
        dense = np.zeros(d)
        dense[:3] = [5.0, -4.0, 3.0]
        uploads = [make_upload(i, dense, 3) for i in range(3)]  # same 3 indices
        result = FABTopK().server_select(uploads, k=10, dimension=d)
        np.testing.assert_array_equal(result.indices, [0, 1, 2])

    def test_fairness_floor(self):
        # Client 0 has huge values, clients 1..3 small ones; FAB must still
        # include each client's top-⌊k/N⌋ elements.
        d, k, n = 100, 8, 4
        quota = k // n
        uploads = []
        for i in range(n):
            dense = np.zeros(d)
            block = slice(i * 20, i * 20 + 10)
            scale = 1000.0 if i == 0 else 0.01
            dense[block] = scale * (1 + RNG.random(10))
            uploads.append(make_upload(i, dense, k))
        result = FABTopK().server_select(uploads, k=k, dimension=d)
        for up in uploads:
            ranked = up.payload.indices[ranked_indices(up.payload.values)]
            top_quota = set(ranked[:quota].tolist())
            assert top_quota <= set(result.indices.tolist()), (
                f"client {up.client_id} top-{quota} not all selected"
            )
            assert result.contributions[up.client_id] >= quota

    def test_fub_starves_but_fab_does_not(self):
        d, k = 60, 6
        uploads = []
        for i in range(3):
            dense = np.zeros(d)
            scale = 100.0 if i == 0 else 0.1
            dense[i * 20 : i * 20 + 6] = scale * (1 + RNG.random(6))
            uploads.append(make_upload(i, dense, 6))
        fab = FABTopK().server_select(uploads, k=k, dimension=d)
        fub = FUBTopK().server_select(uploads, k=k, dimension=d)
        assert min(fab.contributions.values()) >= k // 3
        assert min(fub.contributions.values()) == 0  # client starved

    def test_fill_uses_largest_leftover(self):
        # Two clients, k=3: κ=1 gives union size 2, fill one more from
        # κ=2 layer; the larger second-ranked value must win.
        d = 10
        a = np.zeros(d)
        a[0], a[1] = 10.0, 9.0   # client 0: ranks [0, 1]
        b = np.zeros(d)
        b[5], b[6] = 10.0, 1.0   # client 1: ranks [5, 6]
        uploads = [make_upload(0, a, 2), make_upload(1, b, 2)]
        selected = fair_select(uploads, k=3)
        np.testing.assert_array_equal(selected, [0, 1, 5])

    def test_single_client_equals_topk(self):
        d = 30
        dense = RNG.standard_normal(d)
        uploads = [make_upload(0, dense, 7)]
        result = FABTopK().server_select(uploads, k=7, dimension=d)
        np.testing.assert_array_equal(result.indices, top_k_indices(dense, 7))

    def test_invalid_k(self):
        uploads = [make_upload(0, RNG.standard_normal(10), 2)]
        with pytest.raises(ValueError):
            FABTopK().server_select(uploads, k=0, dimension=10)
        with pytest.raises(ValueError):
            FABTopK().server_select(uploads, k=11, dimension=10)

    def test_no_uploads(self):
        with pytest.raises(ValueError):
            FABTopK().server_select([], k=1, dimension=10)

    @given(
        st.integers(min_value=2, max_value=6),   # clients
        st.integers(min_value=1, max_value=25),  # k
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_size_and_fairness(self, n_clients, k, seed):
        d = 50
        rng = np.random.default_rng(seed)
        uploads = [
            make_upload(i, rng.standard_normal(d), min(k, d)) for i in range(n_clients)
        ]
        result = FABTopK().server_select(uploads, k=k, dimension=d)
        union = np.unique(np.concatenate([u.payload.indices for u in uploads]))
        assert result.indices.size == min(k, union.size)
        assert set(result.indices.tolist()) <= set(union.tolist())
        quota = k // n_clients
        for up in uploads:
            assert result.contributions[up.client_id] >= min(
                quota, up.payload.nnz
            )


class TestFUBTopK:
    def test_selects_k_largest_aggregates(self):
        d = 20
        a = np.zeros(d)
        a[0], a[1] = 1.0, 1.0
        b = np.zeros(d)
        b[0], b[2] = 1.0, -0.5
        uploads = [make_upload(0, a, 2), make_upload(1, b, 2)]
        result = FUBTopK().server_select(uploads, k=2, dimension=d)
        # Aggregates: j0 = 1.0, j1 = 0.5, j2 = -0.25 -> keep {0, 1}
        np.testing.assert_array_equal(result.indices, [0, 1])

    def test_weighted_aggregation(self):
        d = 10
        a = np.zeros(d)
        a[0] = 1.0
        b = np.zeros(d)
        b[1] = 1.0
        # Client 1's weight dominates, so index 1 must be kept at k=1.
        uploads = [make_upload(0, a, 1, weight=1), make_upload(1, b, 1, weight=9)]
        result = FUBTopK().server_select(uploads, k=1, dimension=d)
        np.testing.assert_array_equal(result.indices, [1])

    def test_union_smaller_than_k(self):
        d = 10
        a = np.zeros(d)
        a[3] = 2.0
        uploads = [make_upload(0, a, 1)]
        result = FUBTopK().server_select(uploads, k=5, dimension=d)
        np.testing.assert_array_equal(result.indices, [3])


class TestUnidirectionalTopK:
    def test_downlink_is_union(self):
        d = 40
        uploads = []
        for i in range(4):
            dense = np.zeros(d)
            dense[i * 10 : i * 10 + 3] = 1.0 + RNG.random(3)
            uploads.append(make_upload(i, dense, 3))
        result = UnidirectionalTopK().server_select(uploads, k=3, dimension=d)
        assert result.indices.size == 12  # disjoint -> k*N
        assert result.downlink_element_count == 12

    def test_overlapping_uploads_shrink_union(self):
        d = 20
        dense = np.zeros(d)
        dense[:3] = [3.0, 2.0, 1.0]
        uploads = [make_upload(i, dense, 3) for i in range(5)]
        result = UnidirectionalTopK().server_select(uploads, k=3, dimension=d)
        assert result.indices.size == 3


class TestPeriodicK:
    def test_selects_k_random_coordinates(self):
        p = PeriodicK(dimension=30, seed=0)
        idx = p.start_round(5)
        assert idx.size == 5
        assert np.unique(idx).size == 5

    def test_full_coverage_within_period(self):
        d, k = 24, 5
        p = PeriodicK(dimension=d, seed=1)
        seen = set()
        for _ in range(int(np.ceil(d / k))):
            seen.update(p.start_round(k).tolist())
        assert seen == set(range(d))

    def test_same_for_all_clients(self):
        p = PeriodicK(dimension=20, seed=2)
        p.start_round(4)
        rng = np.random.default_rng(0)
        a = p.client_select(RNG.standard_normal(20), 4, rng)
        b = p.client_select(RNG.standard_normal(20), 4, rng)
        np.testing.assert_array_equal(a, b)

    def test_server_select_consumes_round(self):
        d = 20
        p = PeriodicK(dimension=d, seed=3)
        idx = p.start_round(4)
        dense = RNG.standard_normal(d)
        uploads = [
            ClientUpload(0, SparseVector.from_dense(dense, idx), 1),
        ]
        result = p.server_select(uploads, k=4, dimension=d)
        np.testing.assert_array_equal(result.indices, np.sort(idx))
        # Next round draws fresh indices.
        idx2 = p.start_round(4)
        assert not np.array_equal(np.sort(idx), np.sort(idx2)) or True

    def test_server_before_client_raises(self):
        p = PeriodicK(dimension=10)
        sv = SparseVector(np.array([0]), np.array([1.0]), 10)
        with pytest.raises(RuntimeError):
            p.server_select([ClientUpload(0, sv, 1)], k=1, dimension=10)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            PeriodicK(dimension=0)
