"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.optim import SGD, constant_lr, cosine_lr, step_decay_lr


class TestSchedules:
    def test_constant(self):
        s = constant_lr(0.1)
        assert s(0) == s(100) == 0.1

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            constant_lr(0.0)

    def test_step_decay(self):
        s = step_decay_lr(1.0, decay=0.5, every=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            step_decay_lr(1.0, decay=0.0, every=10)
        with pytest.raises(ValueError):
            step_decay_lr(1.0, decay=0.5, every=0)

    def test_cosine_endpoints(self):
        s = cosine_lr(1.0, total_steps=100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(50) == pytest.approx(0.55)
        assert s(200) == pytest.approx(0.1)  # clamps past the horizon

    def test_cosine_monotone_decreasing(self):
        s = cosine_lr(1.0, total_steps=50)
        values = [s(i) for i in range(51)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            cosine_lr(0.0, 10)
        with pytest.raises(ValueError):
            cosine_lr(1.0, 0)


class TestSGD:
    def test_vanilla_step(self):
        opt = SGD(lr=0.1)
        w = np.array([1.0, 2.0])
        g = np.array([1.0, -1.0])
        np.testing.assert_allclose(opt.step(w, g), [0.9, 2.1])
        # Inputs untouched.
        np.testing.assert_allclose(w, [1.0, 2.0])

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        w = np.zeros(1)
        g = np.ones(1)
        w = opt.step(w, g)   # v=1, w=-0.1
        w = opt.step(w, g)   # v=1.9, w=-0.29
        assert w[0] == pytest.approx(-0.29)

    def test_nesterov_differs_from_heavy_ball(self):
        w = np.zeros(3)
        g = np.array([1.0, -2.0, 0.5])
        hb = SGD(lr=0.1, momentum=0.9)
        nag = SGD(lr=0.1, momentum=0.9, nesterov=True)
        w_hb = hb.step(hb.step(w, g), g)
        w_nag = nag.step(nag.step(w, g), g)
        assert not np.allclose(w_hb, w_nag)

    def test_weight_decay(self):
        opt = SGD(lr=0.1, weight_decay=0.5)
        w = np.array([2.0])
        out = opt.step(w, np.zeros(1))
        assert out[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_schedule_integration(self):
        opt = SGD(lr=step_decay_lr(1.0, 0.1, every=1))
        w = np.zeros(1)
        g = np.ones(1)
        w = opt.step(w, g)   # lr=1
        assert w[0] == pytest.approx(-1.0)
        w = opt.step(w, g)   # lr=0.1
        assert w[0] == pytest.approx(-1.1)

    def test_reset(self):
        opt = SGD(lr=0.1, momentum=0.9)
        opt.step(np.zeros(1), np.ones(1))
        assert opt.step_count == 1
        opt.reset()
        assert opt.step_count == 0
        assert opt._velocity is None

    def test_current_lr(self):
        opt = SGD(lr=cosine_lr(1.0, 10))
        assert opt.current_lr() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-1.0)
        with pytest.raises(ValueError):
            SGD(nesterov=True, momentum=0.0)
        opt = SGD()
        with pytest.raises(ValueError):
            opt.step(np.zeros(2), np.zeros(3))

    def test_momentum_converges_quadratic(self):
        # Minimize 0.5*||w - t||^2; momentum should not diverge and must
        # land near the target.
        target = np.array([3.0, -1.0])
        opt = SGD(lr=0.1, momentum=0.9)
        w = np.zeros(2)
        for _ in range(300):
            w = opt.step(w, w - target)
        np.testing.assert_allclose(w, target, atol=1e-3)
