"""Tests for the policy interface, baselines, and the adaptive trainer."""

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.nn.models import make_logistic
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.baselines import ContinuousBandit, Exp3Policy, ValueBasedGD
from repro.online.interval import SearchInterval
from repro.online.policy import RoundObservation, SignPolicy
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def obs(k, probe_k, loss_prev, loss_now, loss_probe, round_time=10.0,
        probe_round_time=None, cost=None):
    if cost is None and loss_prev > loss_now:
        cost = round_time / (loss_prev - loss_now)
    return RoundObservation(
        k=k, round_time=round_time, loss_prev=loss_prev, loss_now=loss_now,
        loss_probe=loss_probe, probe_k=probe_k,
        probe_round_time=probe_round_time, cost=cost,
    )


class TestSignPolicy:
    def test_probe_is_half_step_below(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        policy = SignPolicy(alg)
        assert policy.propose() == 50.0
        expected = 50.0 - alg.step_size() / 2.0
        assert policy.probe_k() == pytest.approx(expected)

    def test_probe_clamped_at_one(self):
        alg = SignOGD(SearchInterval(1.0, 2.0), k1=1.0)
        policy = SignPolicy(alg)
        assert policy.probe_k() is None  # 1 - tiny/2 clamps to 1 == k

    def test_observe_steps_algorithm(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        policy = SignPolicy(alg)
        probe = policy.probe_k()
        # Probe reached same loss with less time -> sign positive -> k down.
        policy.observe(obs(50.0, probe, 1.0, 0.8, 0.8,
                           round_time=10.0, probe_round_time=5.0))
        assert alg.k < 50.0
        assert alg.m == 2

    def test_observe_without_probe_keeps_k(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        policy = SignPolicy(alg)
        policy.observe(obs(50.0, None, 1.0, 0.8, None))
        assert alg.k == 50.0
        assert alg.m == 2

    def test_works_with_algorithm3(self):
        alg = AdaptiveSignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        policy = SignPolicy(alg)
        probe = policy.probe_k()
        policy.observe(obs(50.0, probe, 1.0, 0.9, 0.99,
                           round_time=10.0, probe_round_time=9.0))
        assert alg.k > 50.0  # probe slower -> larger k better


class TestValueBasedGD:
    def test_moves_against_derivative(self):
        K = SearchInterval(1.0, 101.0)
        policy = ValueBasedGD(K, k1=50.0)
        probe = policy.probe_k()
        assert probe is not None and probe < 50.0
        policy.observe(obs(50.0, probe, 1.0, 0.8, 0.8,
                           round_time=10.0, probe_round_time=5.0))
        assert policy.propose() < 50.0

    def test_missing_probe_keeps_k(self):
        policy = ValueBasedGD(SearchInterval(1.0, 101.0), k1=40.0)
        policy.observe(obs(40.0, None, 1.0, 1.1, None))
        assert policy.propose() == 40.0

    def test_stays_in_interval(self):
        K = SearchInterval(10.0, 20.0)
        policy = ValueBasedGD(K, k1=15.0)
        probe = policy.probe_k()
        # Enormous derivative must be clipped by projection.
        policy.observe(obs(15.0, probe, 1.0, 0.5, 0.999,
                           round_time=1000.0, probe_round_time=999.0))
        assert K.contains(policy.propose())

    def test_k1_validation(self):
        with pytest.raises(ValueError):
            ValueBasedGD(SearchInterval(10.0, 20.0), k1=5.0)


class TestExp3:
    def test_proposals_are_arms(self):
        K = SearchInterval(2.0, 512.0)
        policy = Exp3Policy(K, num_arms=16, seed=0)
        for _ in range(20):
            k = policy.propose()
            assert any(abs(k - a) < 1e-9 for a in policy.arms)
            policy.observe(obs(k, None, 1.0, 0.9, None))

    def test_learns_better_arm(self):
        # Arm values: cost grows with distance from the best arm; EXP3
        # should concentrate probability mass near it.
        K = SearchInterval(1.0, 256.0)
        policy = Exp3Policy(K, num_arms=8, gamma=0.2, seed=1)
        best = policy.arms[2]
        for _ in range(3000):
            k = policy.propose()
            cost = 1.0 + abs(np.log(k / best))
            policy.observe(obs(k, None, 1.0, 0.5, None, cost=cost))
        p = policy._probabilities()
        assert p[2] == p.max()

    def test_observe_before_propose_raises(self):
        policy = Exp3Policy(SearchInterval(1.0, 10.0), num_arms=4)
        with pytest.raises(RuntimeError):
            policy.observe(obs(5.0, None, 1.0, 0.9, None))

    def test_missing_cost_is_worst_reward(self):
        policy = Exp3Policy(SearchInterval(1.0, 100.0), num_arms=4, seed=0)
        k = policy.propose()
        policy.observe(obs(k, None, 1.0, 1.5, None, cost=None))  # no decrease
        # Must not crash and weights stay finite.
        assert np.all(np.isfinite(policy._log_weights))

    def test_validation(self):
        K = SearchInterval(1.0, 10.0)
        with pytest.raises(ValueError):
            Exp3Policy(K, num_arms=1)
        with pytest.raises(ValueError):
            Exp3Policy(K, gamma=0.0)

    def test_weights_stable_long_run(self):
        policy = Exp3Policy(SearchInterval(1.0, 100.0), num_arms=8, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(5000):
            k = policy.propose()
            policy.observe(obs(k, None, 1.0, 0.9, None, cost=rng.uniform(1, 5)))
        p = policy._probabilities()
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)


class TestContinuousBandit:
    def test_plays_perturbed_points(self):
        K = SearchInterval(1.0, 101.0)
        policy = ContinuousBandit(K, k1=50.0, seed=0)
        ks = {policy.propose() for _ in range(10)}
        assert len(ks) >= 2  # ± perturbations
        for k in ks:
            assert K.contains(k)

    def test_observe_before_propose_raises(self):
        policy = ContinuousBandit(SearchInterval(1.0, 10.0))
        with pytest.raises(RuntimeError):
            policy.observe(obs(5.0, None, 1.0, 0.9, None))

    def test_drifts_toward_cheaper_region(self):
        # Cost increases with k; center should drift down over time.
        # The one-point bandit's signal is weak (the paper's point: it
        # converges slowly), so check the drift averaged over seeds.
        K = SearchInterval(1.0, 101.0)
        finals = []
        for seed in range(5):
            policy = ContinuousBandit(K, k1=80.0, seed=seed)
            for _ in range(2000):
                k = policy.propose()
                policy.observe(obs(k, None, 1.0, 0.5, None, cost=k))
            finals.append(policy._z)
        assert np.mean(finals) < 75.0

    def test_missing_cost_skips_update(self):
        policy = ContinuousBandit(SearchInterval(1.0, 101.0), k1=50.0, seed=0)
        policy.propose()
        z = policy._z
        policy.observe(obs(50.0, None, 1.0, 1.5, None, cost=None))
        assert policy._z == z

    def test_validation(self):
        K = SearchInterval(1.0, 10.0)
        with pytest.raises(ValueError):
            ContinuousBandit(K, perturbation_fraction=0.0)
        with pytest.raises(ValueError):
            ContinuousBandit(K, k1=100.0)


class TestAdaptiveKTrainer:
    @pytest.fixture
    def setup(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4, feature_dim=10,
                                 separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=5, seed=0)
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        return model, fed, timing

    def _trainer(self, setup, policy, **kwargs):
        model, fed, timing = setup
        return AdaptiveKTrainer(
            model, fed, FABTopK(), policy, timing,
            learning_rate=0.1, batch_size=16, seed=0, **kwargs,
        )

    def test_runs_and_learns(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        policy = SignPolicy(AdaptiveSignOGD(K, update_window=5))
        trainer = self._trainer(setup, policy)
        initial = trainer.global_loss()
        trainer.run(40)
        assert trainer.history.final_loss < initial
        assert len(trainer.history) == 40

    def test_k_adapts_over_time(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        policy = SignPolicy(SignOGD(K))
        trainer = self._trainer(setup, policy)
        trainer.run(30)
        ks = trainer.history.ks()
        assert len(set(ks)) > 1, "k never moved"

    def test_clock_increases_monotonically(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        trainer = self._trainer(setup, SignPolicy(SignOGD(K)))
        trainer.run(10)
        times = trainer.history.times()
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_probe_charged_in_time(self, setup):
        # Compare only the first round: both trainers start from identical
        # state (same k1, same probe), so the charged round must cost at
        # least as much as the uncharged one.  Later rounds may diverge
        # because the charged round time feeds the sign estimator.
        model, fed, timing = setup
        K = SearchInterval(2.0, float(model.dimension))
        t_with = self._trainer(
            setup, SignPolicy(SignOGD(K)), charge_probe_communication=True
        )
        r_with = t_with.step()
        model2 = make_logistic(10, 4, seed=0)
        t_without = AdaptiveKTrainer(
            model2, fed, FABTopK(), SignPolicy(SignOGD(K)), timing,
            learning_rate=0.1, batch_size=16, seed=0,
            charge_probe_communication=False,
        )
        r_without = t_without.step()
        assert r_with.round_time > r_without.round_time

    def test_exp3_policy_integration(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        trainer = self._trainer(setup, Exp3Policy(K, num_arms=8, seed=0))
        trainer.run(20)
        assert len(trainer.history) == 20

    def test_bandit_policy_integration(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        trainer = self._trainer(setup, ContinuousBandit(K, seed=0))
        trainer.run(20)
        assert len(trainer.history) == 20

    def test_value_policy_integration(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        trainer = self._trainer(setup, ValueBasedGD(K))
        trainer.run(20)
        assert len(trainer.history) == 20

    def test_run_for_time(self, setup):
        model, _, _ = setup
        K = SearchInterval(2.0, float(model.dimension))
        trainer = self._trainer(setup, SignPolicy(SignOGD(K)))
        trainer.run_for_time(30.0, max_rounds=100)
        assert trainer.clock >= 30.0 or len(trainer.history) == 100

    def test_validation(self, setup):
        model, fed, timing = setup
        K = SearchInterval(2.0, float(model.dimension))
        with pytest.raises(ValueError):
            AdaptiveKTrainer(model, fed, FABTopK(), SignPolicy(SignOGD(K)),
                             timing, learning_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveKTrainer(model, fed, FABTopK(), SignPolicy(SignOGD(K)),
                             timing, eval_every=0)

    def test_adaptive_k_tracks_comm_cost(self):
        # With very expensive communication the learned k should end up
        # well below the starting midpoint; with nearly-free communication
        # it should stay higher.  This is the paper's core qualitative
        # claim (Fig. 7).
        def final_k(comm_time, seed=0):
            ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                     feature_dim=10, separation=4.0, seed=seed)
            fed = partition_iid(ds, num_clients=5, seed=seed)
            model = make_logistic(10, 4, seed=seed)
            timing = TimingModel(dimension=model.dimension, comm_time=comm_time)
            K = SearchInterval(2.0, float(model.dimension))
            policy = SignPolicy(AdaptiveSignOGD(K, update_window=10))
            trainer = AdaptiveKTrainer(model, fed, FABTopK(), policy, timing,
                                       learning_rate=0.1, batch_size=16,
                                       seed=seed, eval_every=10)
            trainer.run(120)
            return float(np.mean(trainer.history.ks()[-30:]))

        k_expensive = final_k(comm_time=200.0)
        k_cheap = final_k(comm_time=0.01)
        assert k_expensive < k_cheap
