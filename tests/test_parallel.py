"""Parallel subsystem tests: worker pool, sharded backend, store, sweep.

Backend *equivalence* (sharded == serial bit for bit across the
sparsifier matrix) lives in ``tests/test_engine.py``; this file covers
the subsystem's own machinery — pool protocol and failure modes, session
bookkeeping, the content-addressed results store, and the sweep
orchestrator's expand/cache/fan-out behaviour.
"""

import copy
import json
import pickle

import numpy as np
import pytest

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.data.virtual import VirtualFederation, VirtualSpec
from repro.experiments.config import ExperimentConfig, scaled_config
from repro.fl.trainer import FLTrainer
from repro.nn.flat import FlatModel
from repro.nn.layers import Dropout, Linear, ReLU, Sequential
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import make_logistic, make_mlp
from repro.parallel.pool import WorkerPool, default_worker_count
from repro.parallel.sharded import ShardedBackend
from repro.parallel.store import ResultsStore, canonical_json, content_key
from repro.parallel.sweep import (
    SWEEP_FIGURES,
    SweepSpec,
    collect_artifacts,
    expand,
    run_sweep,
)
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK


def _federation(num_writers=6, seed=3):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=15,
                           num_classes=8, image_size=6, classes_per_writer=3,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


def _trainer(backend, seed=3):
    fed = _federation(seed=seed)
    model = make_mlp(36, 8, hidden=(10,), seed=seed)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    return FLTrainer(model, fed, FABTopK(), timing=timing, learning_rate=0.05,
                     batch_size=8, eval_every=3, seed=seed, backend=backend)


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_round_robin_shard_layout(self):
        pool = WorkerPool(num_workers=3, dimension=4)
        try:
            assert [pool.worker_of(cid) for cid in range(7)] == \
                [0, 1, 2, 0, 1, 2, 0]
        finally:
            pool.close()

    def test_gradients_match_in_process_reference(self):
        fed = _federation()
        model = make_logistic(36, 8, seed=1)
        # Reference copies BEFORE registration pickles the live datasets:
        # both sides then consume identical RNG streams.
        reference = copy.deepcopy(fed)
        pool = WorkerPool(num_workers=2, dimension=model.dimension)
        try:
            pool.broadcast_model(0, model)
            for shard in fed.clients:  # federation shards ARE the datasets
                pool.register_clients(
                    pool.worker_of(shard.client_id), 0,
                    {shard.client_id: (shard, 8)},
                )
            weights = model.get_weights()
            ids = [c.client_id for c in fed.clients]
            for _ in range(2):  # streams must stay aligned across rounds
                results = pool.compute_gradients(
                    0, ids, weights, want_batches=True
                )
                for shard, (grad, (x, y)) in zip(reference.clients, results):
                    rx, ry = shard.minibatch(8)
                    np.testing.assert_array_equal(rx, x)
                    np.testing.assert_array_equal(ry, y)
                    np.testing.assert_array_equal(
                        grad, model.gradient(rx, ry)[0]
                    )
            # Batches are only shipped on probe rounds; the steady state
            # returns gradients alone.
            (_, batch), = pool.compute_gradients(0, ids[:1], weights)
            assert batch is None
        finally:
            pool.close()

    def test_broadcast_weights_reach_workers(self):
        model = make_logistic(4, 3, seed=0)  # 2x2 images below
        pool = WorkerPool(num_workers=2, dimension=model.dimension)
        try:
            pool.broadcast_model(0, model)
            fed = make_femnist_like(num_writers=2, samples_per_writer=10,
                                    num_classes=3, image_size=2,
                                    classes_per_writer=2, seed=0)
            parts = partition_by_writer(fed, seed=0)
            shard = parts.clients[0]
            pool.register_clients(0, 0, {0: (shard, 4)})
            zeros = np.zeros(model.dimension)
            (grad_zero, batch), = pool.compute_gradients(
                0, [0], zeros, want_batches=True
            )
            # Same batch at different broadcast weights must change the
            # gradient: proof the worker reads the shared buffer, not a
            # stale model pickle.
            ones = np.full(model.dimension, 0.5)
            (grad_half, _), = pool.compute_gradients(0, [0], ones)
            model.set_weights(zeros)
            np.testing.assert_array_equal(
                grad_zero, model.gradient(*batch)[0]
            )
            assert not np.array_equal(grad_zero, grad_half)
        finally:
            pool.close()

    def test_worker_error_propagates_and_poisons_pool(self):
        model = make_logistic(4, 2, seed=0)
        pool = WorkerPool(num_workers=1, dimension=model.dimension)
        try:
            pool.broadcast_model(0, model)
            with pytest.raises(RuntimeError, match="KeyError"):
                pool.compute_gradients(0, [99], model.get_weights())
            # Other workers' queued replies would desync the protocol, so
            # a failed request tears the whole pool down.
            assert not pool.alive
        finally:
            pool.close()

    def test_backend_refuses_to_restart_a_dead_pool(self):
        backend = ShardedBackend(jobs=2)
        trainer = _trainer(backend)
        trainer.run(2, k=8)
        backend._pool.close()  # simulate a mid-run pool death
        with pytest.raises(RuntimeError, match="died mid-run"):
            trainer.step(8)
        # ...and the backend stays poisoned afterwards.
        with pytest.raises(RuntimeError, match="close"):
            trainer.step(8)

    def test_close_is_idempotent(self):
        pool = WorkerPool(num_workers=2, dimension=4)
        assert pool.alive
        pool.close()
        assert not pool.alive
        pool.close()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(num_workers=0, dimension=4)
        with pytest.raises(ValueError):
            WorkerPool(num_workers=1, dimension=0)


# ----------------------------------------------------------------------
# Worker-side tracing over the pool protocol
# ----------------------------------------------------------------------
class TestWorkerTracing:
    def _registered_pool(self):
        fed = _federation()
        model = make_logistic(36, 8, seed=1)
        pool = WorkerPool(num_workers=2, dimension=model.dimension)
        pool.broadcast_model(0, model)
        for shard in fed.clients:
            pool.register_clients(
                pool.worker_of(shard.client_id), 0,
                {shard.client_id: (shard, 8)},
            )
        return pool, model, [c.client_id for c in fed.clients]

    def test_untraced_request_ships_no_events(self):
        # The raising-Null proof extends across the pipe: with telemetry
        # disabled the trace flag is False and the worker does zero
        # telemetry work — the reply's event slot is None, not [].
        pool, model, ids = self._registered_pool()
        try:
            pool._conns[0].send(("grads", 0, [ids[0]], False, False))
            status, (out, events) = pool._conns[0].recv()
            assert status == "ok"
            assert len(out) == 1
            assert events is None
        finally:
            pool.close()

    def test_traced_request_ships_buffered_spans(self):
        pool, model, ids = self._registered_pool()
        try:
            worker_ids = [cid for cid in ids if pool.worker_of(cid) == 1]
            for request in range(2):
                pool._conns[1].send(("grads", 0, worker_ids, False, True))
                status, (out, events) = pool._conns[1].recv()
                assert status == "ok"
                (span,) = events
                assert span["type"] == "span"
                assert span["name"] == "worker.gradients"
                assert span["process"] == "worker-1"
                assert span["clients"] == len(worker_ids)
                assert span["regenerated"] == 0  # real arrays, no specs
                assert span["seconds"] >= 0.0
                # seq is worker-lifetime monotonic, so multiple requests
                # within one round still merge deterministically.
                assert span["seq"] == request
        finally:
            pool.close()

    def test_merged_stream_is_deterministic(self, tmp_path):
        # Two identical traced sharded runs must produce byte-identical
        # merged JSONL once wall-clock fields are stripped.
        def traced_run(path):
            from repro.obs import JsonlSink, Telemetry

            telemetry = Telemetry(sink=JsonlSink(path))
            backend = ShardedBackend(jobs=2)
            trainer = _trainer(backend)
            trainer.engine.telemetry = telemetry
            backend.telemetry = telemetry
            try:
                trainer.run(4, k=8)
            finally:
                trainer.close()
                telemetry.close()

        def normalize(line):
            event = json.loads(line)
            event.pop("seconds", None)
            event.pop("wall_seconds", None)
            if "phases" in event:
                event["phases"] = sorted(event["phases"])
            if event.get("type") == "counters":
                event["counters"] = {
                    name: value
                    for name, value in event["counters"].items()
                    if not name.endswith("_seconds")
                }
            return json.dumps(event, sort_keys=True)

        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            traced_run(path)
        streams = [
            [normalize(line) for line in path.read_text().splitlines()]
            for path in paths
        ]
        assert streams[0] == streams[1]

        events = [json.loads(line)
                  for line in paths[0].read_text().splitlines()]
        worker_spans = [e for e in events
                        if e.get("process", "").startswith("worker-")]
        assert worker_spans, "worker events must reach the merged stream"
        # Deterministic (round, worker_id, seq) merge order.
        keys = [(e["round"], e["process"], e["seq"]) for e in worker_spans]
        assert keys == sorted(keys)
        for span in worker_spans:
            assert span["name"] == "worker.gradients"
            assert span["round"] >= 1


# ----------------------------------------------------------------------
# ShardedBackend bookkeeping (equivalence is in test_engine.py)
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_single_job_runs_in_process(self):
        backend = ShardedBackend(jobs=1)
        trainer = _trainer(backend)
        trainer.run(3, k=8)
        assert backend._pool is None  # serial fallback, no processes
        reference = _trainer("serial")
        reference.run(3, k=8)
        np.testing.assert_array_equal(
            trainer.model.get_weights(), reference.model.get_weights()
        )

    def test_default_jobs_follow_cpu_count(self):
        assert ShardedBackend().jobs == default_worker_count()
        assert ShardedBackend(jobs=0).jobs == default_worker_count()
        with pytest.raises(ValueError):
            ShardedBackend(jobs=-2)

    def test_backend_reuse_across_sequential_trainers(self):
        # The figure-driver pattern: one backend, several trainers back
        # to back, each with a fresh federation; sessions keep every
        # trainer bit-identical to its serial twin.
        backend = ShardedBackend(jobs=2)
        try:
            for seed in (3, 4):
                fast = _trainer(backend, seed=seed)
                slow = _trainer("serial", seed=seed)
                fast.run(4, k=8)
                slow.run(4, k=8)
                np.testing.assert_array_equal(
                    fast.model.get_weights(), slow.model.get_weights()
                )
        finally:
            backend.close()

    def test_dropout_model_falls_back_and_stays_identical(self):
        # Active Dropout draws per-forward RNG, so the gradient depends
        # on the model's stream position; worker replicas cannot share
        # that stream.  The backend must run such models in process —
        # and stay bit-identical to serial (this diverged before the
        # deterministic_gradients guard existed).
        def build(backend, seed=3):
            rng = np.random.default_rng(seed)
            model = FlatModel(Sequential([
                Linear(36, 10, rng), ReLU(), Dropout(0.3, seed=seed),
                Linear(10, 8, rng),
            ]), SoftmaxCrossEntropy())
            assert not model.deterministic_gradients()
            fed = _federation(seed=seed)
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            return FLTrainer(model, fed, FABTopK(), timing=timing,
                             learning_rate=0.05, batch_size=8, eval_every=3,
                             seed=seed, backend=backend)
        backend = ShardedBackend(jobs=2)
        try:
            fast = build(backend)
            slow = build("serial")
            fast.run(4, k=8)
            slow.run(4, k=8)
            assert backend._pool is None  # in-process fallback, no pool
            np.testing.assert_array_equal(
                fast.model.get_weights(), slow.model.get_weights()
            )
        finally:
            backend.close()

    def test_finished_sessions_are_dropped(self):
        # A driver runs many trainers on one backend; sessions of
        # collected trainers must be released, not accumulated.
        import gc

        backend = ShardedBackend(jobs=2)
        try:
            first = _trainer(backend, seed=3)
            first.run(2, k=8)
            assert backend._issued_tokens == {0}
            del first
            gc.collect()
            second = _trainer(backend, seed=4)
            second.run(2, k=8)
            assert backend._issued_tokens == {1}
            assert {key[0] for key in backend._registered} == {1}
        finally:
            backend.close()

    def test_pool_restarts_on_dimension_change(self):
        backend = ShardedBackend(jobs=2)
        try:
            trainer = _trainer(backend)
            trainer.run(2, k=8)
            first_pool = backend._pool
            assert first_pool is not None and first_pool.alive

            fed = _federation(seed=6)
            model = make_logistic(36, 8, seed=6)  # different dimension
            timing = TimingModel(dimension=model.dimension, comm_time=10.0)
            other = FLTrainer(model, fed, FABTopK(), timing=timing,
                              learning_rate=0.05, batch_size=8, eval_every=3,
                              seed=6, backend=backend)
            other.run(2, k=8)
            assert backend._pool is not first_pool
            assert not first_pool.alive
        finally:
            backend.close()

    def test_use_after_close_raises(self):
        backend = ShardedBackend(jobs=2)
        trainer = _trainer(backend)
        trainer.run(2, k=8)
        backend.close()
        with pytest.raises(RuntimeError, match="close"):
            trainer.step(8)

    def test_every_entry_point_refuses_after_close(self):
        # The ROADMAP documents "never reuse after close()"; the whole
        # ExecutionBackend surface must enforce it (not just the paths
        # that happen to touch the pool), so misuse is a loud
        # RuntimeError instead of silently diverging histories.
        backend = ShardedBackend(jobs=2)
        trainer = _trainer(backend)
        trainer.run(1, k=8)
        backend.close()
        from repro.sparsify.fab_topk import FABTopK

        with pytest.raises(RuntimeError, match="fresh backend"):
            backend.compute_gradients(trainer.model, trainer.clients)
        with pytest.raises(RuntimeError, match="fresh backend"):
            backend.local_steps(trainer.model, trainer.clients, 8, FABTopK())
        with pytest.raises(RuntimeError, match="fresh backend"):
            backend.reset_residuals(trainer.clients, [], np.array([0]))
        backend.close()  # close itself stays idempotent


# ----------------------------------------------------------------------
# Virtual federations across the pool
# ----------------------------------------------------------------------
class TestVirtualSharding:
    """Virtual clients ship as specs; steady-state IPC is ids/gradients."""

    def _virtual_trainer(self, backend, seed=3):
        fed = VirtualFederation.build(
            12, samples_per_client=10, num_classes=6, image_size=6,
            classes_per_writer=3, seed=seed,
        )
        model = make_mlp(36, 6, hidden=(8,), seed=seed)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        return FLTrainer(model, fed, FABTopK(), timing=timing,
                         learning_rate=0.05, batch_size=4, eval_every=3,
                         seed=seed, backend=backend)

    def test_registration_ships_specs_not_arrays(self, monkeypatch):
        registered = []
        original = WorkerPool.register_clients

        def spy(pool, worker, token, clients):
            registered.append(dict(clients))
            return original(pool, worker, token, clients)

        monkeypatch.setattr(WorkerPool, "register_clients", spy)
        backend = ShardedBackend(jobs=2)
        trainer = self._virtual_trainer(backend)
        try:
            trainer.run(2, k=10)
        finally:
            trainer.close()
        assert registered  # the sharded path actually ran
        shards = [
            shard for call in registered for shard, _batch in call.values()
        ]
        assert len(shards) == 12  # each client registered exactly once
        for shard in shards:
            # The payload crossing the pipe is the federation's tiny
            # value object, never sample arrays — so a client's *first*
            # participation costs the same IPC as steady state.
            assert isinstance(shard, VirtualSpec)
            assert len(pickle.dumps(shard)) < 512

    def test_steady_state_ipc_is_ids_out_gradients_back(self, monkeypatch):
        calls = []
        original = WorkerPool.register_clients

        def spy(pool, worker, token, clients):
            calls.append(clients)
            return original(pool, worker, token, clients)

        monkeypatch.setattr(WorkerPool, "register_clients", spy)
        backend = ShardedBackend(jobs=2)
        trainer = self._virtual_trainer(backend)
        try:
            trainer.step(10)
            after_first = len(calls)
            trainer.step(10)
            trainer.step(10)
            # Registration happened on first participation only; the
            # recurring round-trip is client ids out, gradients (plus
            # probe batches when drawn) back.
            assert len(calls) == after_first
        finally:
            trainer.close()

    def test_virtual_round_matches_serial_bit_for_bit(self):
        backend = ShardedBackend(jobs=2)
        fast = self._virtual_trainer(backend)
        serial = self._virtual_trainer("serial")
        try:
            hf = fast.run(4, k=10)
            hs = serial.run(4, k=10)
        finally:
            fast.close()
        # repr-compare: un-evaluated rounds carry NaN losses and
        # NaN != NaN would fail a plain tuple comparison.
        assert [repr(vars(r)) for r in hs.records] == \
            [repr(vars(r)) for r in hf.records]
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)


# ----------------------------------------------------------------------
# ResultsStore
# ----------------------------------------------------------------------
class TestResultsStore:
    def test_key_ignores_field_order_but_not_values(self):
        a = content_key({"figure": "fig4", "seed": 0})
        b = content_key({"seed": 0, "figure": "fig4"})
        c = content_key({"figure": "fig4", "seed": 1})
        assert a == b
        assert a != c
        assert len(a) == 64 and int(a, 16) >= 0

    def test_canonical_json_is_deterministic(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_roundtrip_and_missing(self, tmp_path):
        store = ResultsStore(tmp_path / "cache")
        key = content_key({"x": 1})
        assert store.load(key) is None
        assert key not in store
        payload = {"artifacts": {"fig": {"series": []}}, "seconds": 1.5}
        path = store.store(key, payload)
        assert path.exists()
        assert key in store
        assert store.load(key) == payload
        assert store.keys() == [key]

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = content_key({"x": 2})
        store.store(key, {"ok": True})
        store.path_for(key).write_text('{"truncated": ')
        assert store.load(key) is None

    def test_config_key_covers_backend_and_seed(self):
        base = scaled_config("smoke")

        def key(config):
            return content_key({"figure": "fig4", "config": config.to_dict()})

        assert key(base) == key(base.with_overrides())
        assert key(base) != key(base.with_overrides(seed=1))
        assert key(base) != key(base.with_overrides(backend="vectorized"))


# ----------------------------------------------------------------------
# ExperimentConfig serialization (sweep dispatch format)
# ----------------------------------------------------------------------
class TestConfigSerialization:
    def test_dict_roundtrip_through_json(self):
        config = scaled_config("bench").with_overrides(
            backend="sharded", jobs=2, seed=7, hidden=(16, 8)
        )
        rebuilt = ExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config
        assert rebuilt.hidden == (16, 8)

    def test_from_dict_validates(self):
        data = scaled_config("smoke").to_dict()
        data["backend"] = "bogus"
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig.from_dict(data)


# ----------------------------------------------------------------------
# Sweep orchestrator
# ----------------------------------------------------------------------
class TestSweep:
    def test_expand_is_the_full_grid(self):
        spec = SweepSpec(figures=("fig1", "fig6"), scales=("smoke", "bench"),
                         seeds=(0, 1), backends=("serial", "vectorized"),
                         rounds=9)
        units = expand(spec)
        assert len(units) == 16
        assert len({unit.key() for unit in units}) == 16
        assert len({unit.run_id for unit in units}) == 16
        assert all(unit.config.num_rounds == 9 for unit in units)

    def test_expand_threads_sharded_jobs(self):
        spec = SweepSpec(figures=("fig1",), scales=("smoke",),
                         backends=("sharded",), jobs_per_run=3)
        (unit,) = expand(spec)
        assert unit.config.backend == "sharded"
        assert unit.config.jobs == 3

    def test_spec_validates_axes(self):
        with pytest.raises(ValueError, match="figure"):
            SweepSpec(figures=("fig99",))
        with pytest.raises(ValueError, match="scale"):
            SweepSpec(scales=("huge",))
        with pytest.raises(ValueError, match="backend"):
            SweepSpec(backends=("gpu",))

    def test_collect_artifacts_rejects_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            collect_artifacts("fig99", scaled_config("smoke"))

    def test_run_sweep_caches_and_reexports(self, tmp_path):
        spec = SweepSpec(figures=("fig6",), scales=("smoke",), rounds=4)
        cache = tmp_path / "cache"
        out = tmp_path / "out"
        cold = run_sweep(spec, cache_dir=cache, out=out, jobs=1)
        assert (cold.computed, cold.cached) == (1, 0)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        artifact = out / "fig6_smoke_seed0_serial" / "fig6_k_traces.json"
        assert artifact.exists()

        artifact.unlink()
        warm = run_sweep(spec, cache_dir=cache, out=out, jobs=1)
        assert (warm.computed, warm.cached) == (0, 1)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert artifact.exists()  # re-exported from the store

        forced = run_sweep(spec, cache_dir=cache, jobs=1, force=True)
        assert (forced.computed, forced.cached) == (1, 0)
        # force skips the load entirely: neither a hit nor a miss.
        assert (forced.cache_hits, forced.cache_misses) == (0, 0)

    def test_telemetry_never_forks_the_cache(self, tmp_path):
        spec = SweepSpec(figures=("fig6",), scales=("smoke",), rounds=3)
        traced = SweepSpec(figures=("fig6",), scales=("smoke",), rounds=3,
                           telemetry=str(tmp_path / "trace.jsonl"))
        (plain_unit,) = expand(spec)
        (traced_unit,) = expand(traced)
        assert traced_unit.config.telemetry == str(tmp_path / "trace.jsonl")
        assert plain_unit.key() == traced_unit.key()

        cache = tmp_path / "cache"
        cold = run_sweep(spec, cache_dir=cache, jobs=1)
        assert (cold.computed, cold.cached) == (1, 0)
        # A traced re-run of the same grid hits the untraced run's cache.
        warm = run_sweep(traced, cache_dir=cache, jobs=1)
        assert (warm.computed, warm.cached) == (0, 1)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)

    def test_run_sweep_pool_matches_inline(self, tmp_path):
        spec = SweepSpec(figures=("fig1", "fig6"), scales=("smoke",),
                         rounds=3)
        inline = run_sweep(spec, cache_dir=tmp_path / "inline", jobs=1)
        pooled = run_sweep(spec, cache_dir=tmp_path / "pooled", jobs=2)
        assert inline.computed == pooled.computed == 2
        inline_store = ResultsStore(tmp_path / "inline")
        pooled_store = ResultsStore(tmp_path / "pooled")
        assert inline_store.keys() == pooled_store.keys()
        for key in inline_store.keys():
            assert (
                inline_store.load(key)["artifacts"]
                == pooled_store.load(key)["artifacts"]
            )

    def test_sweep_figures_match_cli_figures(self):
        from repro.cli import FIGURES

        assert SWEEP_FIGURES == FIGURES
