"""Tests for the layer-wise and hard-threshold sparsifier extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic, make_mlp
from repro.sparsify.layerwise import LayerwiseTopK
from repro.sparsify.threshold import HardThreshold

RNG = np.random.default_rng(9)


def contiguous_slices(*sizes):
    out, start = [], 0
    for size in sizes:
        out.append(slice(start, start + size))
        start += size
    return out


class TestLayerwiseBudgets:
    def test_proportional_split(self):
        sp = LayerwiseTopK(contiguous_slices(80, 20), split="proportional")
        budgets = sp.budgets(np.zeros(100), k=10)
        assert budgets == [8, 2]

    def test_budgets_sum_to_k(self):
        sp = LayerwiseTopK(contiguous_slices(33, 19, 48))
        for k in (1, 7, 50, 100):
            assert sum(sp.budgets(np.zeros(100), k)) == k

    def test_budget_clamped_to_layer_size(self):
        sp = LayerwiseTopK(contiguous_slices(3, 97))
        budgets = sp.budgets(np.zeros(100), k=50)
        assert budgets[0] <= 3
        assert sum(budgets) == 50

    def test_magnitude_split_follows_residual(self):
        sp = LayerwiseTopK(contiguous_slices(50, 50), split="magnitude")
        residual = np.zeros(100)
        residual[:50] = 10.0   # all the mass in layer 0
        residual[50:] = 0.01
        budgets = sp.budgets(residual, k=10)
        assert budgets[0] > budgets[1]

    def test_magnitude_split_zero_residual_falls_back(self):
        sp = LayerwiseTopK(contiguous_slices(80, 20), split="magnitude")
        budgets = sp.budgets(np.zeros(100), k=10)
        assert budgets == [8, 2]

    def test_k_exceeding_dimension(self):
        sp = LayerwiseTopK(contiguous_slices(5, 5))
        assert sum(sp.budgets(np.zeros(10), k=100)) == 10


class TestLayerwiseSelection:
    def test_client_select_within_layers(self):
        sp = LayerwiseTopK(contiguous_slices(10, 10))
        residual = np.zeros(20)
        residual[3] = 5.0
        residual[15] = 4.0
        residual[16] = 3.0
        idx = sp.client_select(residual, k=2, rng=RNG)
        # Proportional split gives 1 per layer: best of each layer.
        np.testing.assert_array_equal(idx, [3, 15])

    def test_global_topk_would_differ(self):
        # The same residual under a global top-k would pick {3, 15} too
        # with k=2, so use k=3: layerwise forces one from the weak layer.
        sp = LayerwiseTopK(contiguous_slices(10, 10))
        residual = np.zeros(20)
        residual[0], residual[1], residual[2] = 9.0, 8.0, 7.0
        residual[10] = 0.1
        idx = sp.client_select(residual, k=4, rng=RNG)
        assert 10 in idx  # the weak layer still gets its quota

    def test_residual_length_checked(self):
        sp = LayerwiseTopK(contiguous_slices(10, 10))
        with pytest.raises(ValueError):
            sp.client_select(np.zeros(15), k=2, rng=RNG)

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            LayerwiseTopK([])
        with pytest.raises(ValueError):
            LayerwiseTopK([slice(5, 10)])  # not starting at 0
        with pytest.raises(ValueError):
            LayerwiseTopK([slice(0, 5), slice(7, 10)])  # gap
        with pytest.raises(ValueError):
            LayerwiseTopK([slice(0, 0)])  # empty
        with pytest.raises(ValueError):
            LayerwiseTopK(contiguous_slices(5), split="nope")

    def test_integrates_with_flat_model_slices(self):
        model = make_mlp(10, 4, hidden=(6,), seed=0)
        sp = LayerwiseTopK(model.parameter_slices())
        residual = RNG.standard_normal(model.dimension)
        idx = sp.client_select(residual, k=12, rng=RNG)
        assert idx.size == 12

    def test_training_converges(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                 feature_dim=10, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=4, seed=0)
        model = make_logistic(10, 4, seed=0)
        sp = LayerwiseTopK(model.parameter_slices())
        trainer = FLTrainer(model, fed, sp, learning_rate=0.1,
                            batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(50, k=10)
        assert trainer.history.final_loss < initial * 0.8

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_budget_conservation(self, k, seed):
        rng = np.random.default_rng(seed)
        sizes = rng.integers(1, 30, size=rng.integers(1, 5)).tolist()
        sp = LayerwiseTopK(contiguous_slices(*sizes), split="magnitude")
        residual = rng.standard_normal(sum(sizes))
        budgets = sp.budgets(residual, k)
        assert sum(budgets) == min(k, sum(sizes))
        for b, size in zip(budgets, sizes):
            assert 0 <= b <= size


class TestHardThreshold:
    def test_selects_above_threshold(self):
        sp = HardThreshold(threshold=1.0)
        residual = np.array([0.5, 1.5, -2.0, 0.1, 1.0])
        idx = sp.client_select(residual, k=10, rng=RNG)
        np.testing.assert_array_equal(idx, [1, 2, 4])

    def test_cap_at_k(self):
        sp = HardThreshold(threshold=0.1)
        residual = RNG.standard_normal(50) + 1.0
        idx = sp.client_select(residual, k=5, rng=RNG)
        assert idx.size == 5

    def test_never_sends_nothing(self):
        sp = HardThreshold(threshold=100.0)
        residual = np.array([0.1, 0.5, 0.3])
        idx = sp.client_select(residual, k=5, rng=RNG)
        np.testing.assert_array_equal(idx, [1])

    def test_adaptive_threshold_moves_toward_target(self):
        sp = HardThreshold(threshold=0.001, target_elements=5, adapt_rate=0.2)
        rng = np.random.default_rng(0)
        sent = []
        for _ in range(60):
            residual = rng.standard_normal(200)
            sent.append(sp.client_select(residual, k=200, rng=RNG).size)
        # Early rounds send ~200 elements; after adaptation counts drop
        # close to the target.
        assert np.mean(sent[-10:]) < 4 * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            HardThreshold(threshold=0.0)
        with pytest.raises(ValueError):
            HardThreshold(threshold=1.0, target_elements=0)
        with pytest.raises(ValueError):
            HardThreshold(threshold=1.0, adapt_rate=1.0)

    def test_training_converges(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                 feature_dim=10, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=4, seed=0)
        model = make_logistic(10, 4, seed=0)
        sp = HardThreshold(threshold=0.05, target_elements=10)
        trainer = FLTrainer(model, fed, sp, learning_rate=0.1,
                            batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(50, k=20)
        assert trainer.history.final_loss < initial * 0.8
