"""Tests for the per-layer diagnostics helper."""

import numpy as np
import pytest

from repro.fl.diagnostics import layer_breakdown
from repro.nn.models import make_mlp


class TestLayerBreakdown:
    def test_shares_sum_to_one(self):
        vector = np.arange(1, 11, dtype=float)
        slices = [slice(0, 4), slice(4, 10)]
        breakdown = layer_breakdown(vector, slices)
        assert sum(b["l1_share"] for b in breakdown) == pytest.approx(1.0)
        assert breakdown[0]["size"] == 4
        assert breakdown[1]["size"] == 6

    def test_mass_attribution(self):
        vector = np.zeros(10)
        vector[7] = 5.0
        breakdown = layer_breakdown(vector, [slice(0, 5), slice(5, 10)])
        assert breakdown[0]["l1_share"] == 0.0
        assert breakdown[1]["l1_share"] == 1.0

    def test_density(self):
        vector = np.array([1.0, 0.0, 0.0, 2.0])
        breakdown = layer_breakdown(vector, [slice(0, 2), slice(2, 4)])
        assert breakdown[0]["density"] == 0.5
        assert breakdown[1]["density"] == 0.5

    def test_zero_vector(self):
        breakdown = layer_breakdown(np.zeros(6), [slice(0, 6)])
        assert breakdown[0]["l1_share"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            layer_breakdown(np.zeros(5), [])
        with pytest.raises(ValueError):
            layer_breakdown(np.zeros(5), [slice(0, 3)])  # does not cover

    def test_with_flat_model_slices(self):
        model = make_mlp(6, 3, hidden=(4,), seed=0)
        grad = np.abs(np.random.default_rng(0).standard_normal(model.dimension))
        breakdown = layer_breakdown(grad, model.parameter_slices())
        assert len(breakdown) == 4  # W1, b1, W2, b2
        assert sum(b["size"] for b in breakdown) == model.dimension
