"""Cross-checks against independent brute-force reference implementations.

These tests re-implement the paper's selection logic in the most literal,
unoptimized way possible and verify the production code matches exactly —
a stronger guarantee than example-based tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.interval import SearchInterval
from repro.online.policy import SignPolicy
from repro.simulation.heterogeneous import ClientSampler
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import fair_select
from repro.sparsify.periodic import PeriodicK
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.topk import top_k_indices


def reference_fair_select(uploads, k):
    """Literal transcription of Section III-B's selection procedure."""
    # Rank each client's uploads by |value| desc, index asc.
    rankings = []
    best_value = {}
    for up in uploads:
        pairs = sorted(
            zip(up.payload.indices.tolist(), up.payload.values.tolist()),
            key=lambda p: (-abs(p[1]), p[0]),
        )
        rankings.append([j for j, _ in pairs])
        for j, v in pairs:
            best_value[j] = max(best_value.get(j, 0.0), abs(v))

    def union(kappa):
        out = set()
        for ranking in rankings:
            out.update(ranking[:kappa])
        return out

    max_len = max(len(r) for r in rankings)
    if len(union(max_len)) <= k:
        return sorted(union(max_len))
    # Linear search for the paper's κ (binary search is an optimization).
    kappa = 0
    while len(union(kappa + 1)) <= k:
        kappa += 1
    base = union(kappa)
    extra_pool = sorted(
        union(kappa + 1) - base, key=lambda j: (-best_value[j], j)
    )
    chosen = sorted(base | set(extra_pool[: k - len(base)]))
    return chosen


class TestFABAgainstReference:
    @given(
        st.integers(min_value=1, max_value=5),    # clients
        st.integers(min_value=1, max_value=12),   # k
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_fair_select_matches_reference(self, n_clients, k, seed):
        d = 30
        rng = np.random.default_rng(seed)
        uploads = []
        for cid in range(n_clients):
            dense = np.round(rng.standard_normal(d), 3)  # ties plausible
            idx = top_k_indices(dense, min(k, d))
            uploads.append(
                ClientUpload(cid, SparseVector.from_dense(dense, idx), 1)
            )
        got = fair_select(uploads, k).tolist()
        expected = reference_fair_select(uploads, k)
        assert got == expected


class TestPeriodicResidualModes:
    def _setup(self, accumulate):
        ds = make_gaussian_blobs(num_samples=200, num_classes=3,
                                 feature_dim=8, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=3, seed=0)
        model = make_logistic(8, 3, seed=0)
        sp = PeriodicK(model.dimension, seed=0, accumulate=accumulate)
        trainer = FLTrainer(model, fed, sp, learning_rate=0.05,
                            batch_size=16, seed=0)
        return trainer

    def test_discard_mode_keeps_residual_empty(self):
        trainer = self._setup(accumulate=False)
        trainer.run(5, k=4)
        for client in trainer.clients:
            np.testing.assert_allclose(client.residual, 0.0)

    def test_accumulate_mode_builds_residual(self):
        trainer = self._setup(accumulate=True)
        trainer.run(5, k=4)
        total = sum(np.abs(c.residual).sum() for c in trainer.clients)
        assert total > 0

    def test_accumulate_learns_faster(self):
        # Error accumulation recovers the discarded signal over a period,
        # so at equal rounds it should reach an equal-or-lower loss.
        t_acc = self._setup(accumulate=True)
        t_disc = self._setup(accumulate=False)
        t_acc.run(60, k=4)
        t_disc.run(60, k=4)
        assert t_acc.history.final_loss <= t_disc.history.final_loss * 1.1


class TestHistoryLastEvaluated:
    def test_skips_nan(self):
        h = TrainingHistory()
        h.append(RoundRecord(1, 1.0, 1.0, 1.0, 5.0))
        h.append(RoundRecord(2, 1.0, 1.0, 2.0, float("nan")))
        assert h.last_evaluated_loss == 5.0

    def test_all_nan_raises(self):
        h = TrainingHistory()
        h.append(RoundRecord(1, 1.0, 1.0, 1.0, float("nan")))
        with pytest.raises(ValueError):
            _ = h.last_evaluated_loss


class TestAdaptiveTrainerWithSampler:
    def test_runs_with_subset(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                 feature_dim=10, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=6, seed=0)
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(model.dimension, comm_time=10.0)
        interval = SearchInterval(2.0, float(model.dimension))
        sampler = ClientSampler([c.client_id for c in fed.clients],
                                count=3, seed=0)
        trainer = AdaptiveKTrainer(
            model, fed, FABTopK(), SignPolicy(SignOGD(interval)), timing,
            learning_rate=0.1, batch_size=16, sampler=sampler, seed=0,
        )
        initial = trainer.global_loss()
        trainer.run(30)
        record = trainer.history.records[-1]
        assert len(record.contributions) == 3
        assert trainer.history.final_loss < initial
