"""Telemetry subsystem tests.

Four layers of guarantees:

1. **Schema** — every event type validates its required fields; unknown
   types, missing fields, and unknown engine phases are rejected.
2. **Sinks and facade** — JSONL append semantics, numpy coercion,
   counter/gauge/span/flush behaviour, and the no-op ``NullTelemetry``.
3. **Zero-overhead-when-disabled** — a structural proof: a raising
   ``NullTelemetry`` subclass rides through full training runs without
   a single telemetry method doing work, so the disabled path is exactly
   one attribute check per site.
4. **End-to-end traces** — a traced run emits schema-valid events
   covering every engine phase, the trace-report rollup matches a golden
   snapshot of the deterministic fields, and pool/virtual counters
   surface from the sharded backend and virtual federations.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_femnist_like, make_gaussian_blobs
from repro.data.virtual import VirtualFederation
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic, make_mlp
from repro.obs import (
    ENGINE_PHASES,
    EVENT_TYPES,
    NULL_TELEMETRY,
    JsonlSink,
    MemoryAggregator,
    NullTelemetry,
    Telemetry,
    configure_cli_logging,
    encode_event,
    format_trace_report,
    get_logger,
    open_telemetry,
    summarize_trace,
    validate_event,
)
from repro.parallel.sharded import ShardedBackend
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

GOLDEN_REPORT = (
    pathlib.Path(__file__).parent / "data" / "golden_trace_report.json"
)

#: one schema-valid instance of every event type
VALID_EVENTS = {
    "round": {
        "type": "round", "round": 1, "k": 9.0, "round_time": 2.0,
        "cumulative_time": 2.0, "participants": 6, "uplink_elements": 9,
        "downlink_elements": 9, "uplink_bytes": 864, "downlink_bytes": 144,
        "wall_seconds": 0.01, "phases": {"sample": 0.001, "eval": 0.002},
    },
    "span": {"type": "span", "name": "collect", "seconds": 0.5,
             "process": "parent"},
    "drop": {"type": "drop", "round": 3, "client_ids": [1, 4],
             "deadline": 2.5, "close_time": 2.5},
    "recovery": {"type": "recovery", "round": 5, "client_ids": [4]},
    "probe": {"type": "probe", "round": 2, "k_continuous": 14.2,
              "probe_k": 15, "loss_prev": 1.2, "loss_now": 1.1,
              "loss_probe": 1.05},
    "deadline": {"type": "deadline", "round": 4, "deadline": 3.0,
                 "arrived": 5, "dropped": 1, "round_time": 3.0},
    "flagged": {"type": "flagged", "round": 6, "client_ids": [2],
                "detector": "trimmed_mean", "scores": [0.75]},
    "counters": {"type": "counters", "counters": {"pool.ipc_bytes_out": 10},
                 "gauges": {}},
    "alert": {"type": "alert", "round": 7, "detector": "divergence",
              "severity": "critical", "message": "non-finite loss"},
}


class TestEventSchema:
    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_valid_event_passes(self, kind):
        validate_event(VALID_EVENTS[kind])

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_extra_fields_allowed(self, kind):
        validate_event({**VALID_EVENTS[kind], "figure": "fig4",
                        "method": "fab-top-k"})

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_missing_required_field_rejected(self, kind):
        for field in EVENT_TYPES[kind]:
            broken = dict(VALID_EVENTS[kind])
            del broken[field]
            with pytest.raises(ValueError, match="missing"):
                validate_event(broken)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"type": "mystery"})
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"name": "no type at all"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_event(["round"])

    def test_unknown_phase_rejected(self):
        broken = dict(VALID_EVENTS["round"])
        broken["phases"] = {"sample": 0.1, "quantum_leap": 0.2}
        with pytest.raises(ValueError, match="unknown engine phases"):
            validate_event(broken)
        broken["phases"] = [0.1, 0.2]
        with pytest.raises(ValueError, match="phases"):
            validate_event(broken)


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(VALID_EVENTS["span"])
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == VALID_EVENTS["span"]

    def test_jsonl_appends_across_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            sink.write(VALID_EVENTS["recovery"])
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_creates_parent_directories(self, tmp_path):
        sink = JsonlSink(tmp_path / "deep" / "down" / "trace.jsonl")
        sink.write(VALID_EVENTS["span"])
        sink.close()
        assert (tmp_path / "deep" / "down" / "trace.jsonl").exists()

    def test_encode_event_coerces_numpy_scalars(self):
        line = encode_event({
            "type": "span", "name": "x",
            "seconds": np.float64(0.25), "count": np.int64(3),
        })
        assert json.loads(line) == {
            "type": "span", "name": "x", "seconds": 0.25, "count": 3,
        }

    def test_encode_event_rejects_unserializable(self):
        with pytest.raises(TypeError, match="not JSON serializable"):
            encode_event({"type": "span", "obj": object()})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_encode_event_rejects_non_finite_floats(self, bad):
        # The emit-site coercion is the contract; allow_nan=False is the
        # backstop that turns a slipped-through NaN/inf into a loud
        # error instead of a silently invalid ``Infinity`` JSONL token.
        with pytest.raises(ValueError):
            encode_event({"type": "round", "loss": bad})

    def test_aggregator_rollup(self):
        agg = MemoryAggregator()
        for kind in sorted(EVENT_TYPES):
            agg.add(VALID_EVENTS[kind])
        summary = agg.summary()
        assert summary["events"] == {k: 1 for k in sorted(EVENT_TYPES)}
        assert summary["rounds"] == 1
        assert summary["phases"] == ["eval", "sample"]
        assert summary["uplink_elements"] == 9
        assert summary["uplink_bytes"] == 864
        assert summary["downlink_bytes"] == 144
        assert summary["dropped_uploads"] == 2
        assert summary["recovered_clients"] == 1
        assert summary["span_seconds"] == {"collect": 0.5}
        assert summary["counters"] == {"pool.ipc_bytes_out": 10}
        assert summary["span_seconds_by_process"] == {
            "parent": {"collect": 0.5}
        }
        assert summary["flagged"] == {
            "events": 1,
            "by_detector": {"trimmed_mean": 1},
            "top_clients": [[2, 1]],
        }
        assert summary["alerts"]["total"] == 1
        assert summary["alerts"]["by_detector"] == {"divergence": 1}
        assert summary["alerts"]["first"][0]["detector"] == "divergence"

    def test_aggregator_ranks_flagged_offenders(self):
        agg = MemoryAggregator()
        for round_index, cids in enumerate(([3], [3, 5], [3, 5], [9])):
            agg.add({"type": "flagged", "round": round_index,
                     "client_ids": cids, "detector": "krum",
                     "scores": [0.5] * len(cids)})
        flagged = agg.summary()["flagged"]
        assert flagged["events"] == 4
        assert flagged["by_detector"] == {"krum": 4}
        # Worst offender first; count ties break by client id.
        assert flagged["top_clients"] == [[3, 3], [5, 2], [9, 1]]

    def test_worker_spans_roll_up_by_process(self):
        agg = MemoryAggregator()
        for process, seconds in (("worker-0", 0.25), ("worker-1", 0.5),
                                 ("worker-0", 0.25), ("parent", 1.0)):
            agg.add({"type": "span", "name": "worker.gradients",
                     "seconds": seconds, "process": process})
        summary = agg.summary()
        assert summary["span_seconds_by_process"] == {
            "parent": {"worker.gradients": 1.0},
            "worker-0": {"worker.gradients": 0.5},
            "worker-1": {"worker.gradients": 0.5},
        }
        assert summary["span_seconds"] == {"worker.gradients": 2.0}

    def test_jsonl_sink_is_a_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.write(VALID_EVENTS["span"])
        assert len(path.read_text().splitlines()) == 1
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                raise RuntimeError("mid-run failure")
        assert sink._file.closed


class TestTelemetryFacade:
    def test_counters_accumulate_gauges_overwrite(self):
        tel = Telemetry()
        tel.count("a")
        tel.count("a", 4)
        tel.gauge("g", 1.0)
        tel.gauge("g", 2.5)
        assert tel.counters == {"a": 5}
        assert tel.gauges == {"g": 2.5}

    def test_annotations_ride_on_events(self):
        tel = Telemetry()
        tel.annotate(figure="fig4", method="fab-top-k")
        tel.event("span", name="x", seconds=0.1)
        assert tel.aggregator.event_counts == {"span": 1}
        # Events are validated before reaching the aggregator/sink.
        with pytest.raises(ValueError, match="missing"):
            tel.event("span", name="unfinished")

    def test_span_times_a_block(self):
        tel = Telemetry()
        with tel.span("work", figure="fig1"):
            pass
        assert tel.aggregator.span_seconds["work"] >= 0.0

    def test_flush_snapshots_and_resets(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        tel.count("pool.ipc_bytes_out", 128)
        tel.gauge("workers", 2)
        tel.flush()
        assert tel.counters == {} and tel.gauges == {}
        tel.flush()  # empty flush emits nothing
        tel.count("pool.ipc_bytes_out", 64)
        tel.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["type"] for e in events] == ["counters", "counters"]
        assert events[0]["counters"] == {"pool.ipc_bytes_out": 128}
        assert events[0]["gauges"] == {"workers": 2}
        # Delta semantics: the second snapshot never double-counts.
        assert events[1]["counters"] == {"pool.ipc_bytes_out": 64}
        # The aggregator sums the deltas back to the true total.
        assert tel.aggregator.counters == {"pool.ipc_bytes_out": 192}

    def test_open_telemetry(self, tmp_path):
        assert open_telemetry(None) is NULL_TELEMETRY
        assert open_telemetry("") is NULL_TELEMETRY
        tel = open_telemetry(str(tmp_path / "trace.jsonl"))
        assert tel.enabled
        tel.close()

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        null.count("x")
        null.gauge("x", 1.0)
        null.event("round")  # no validation, no storage
        null.annotate(figure="fig1")
        with null.span("x"):
            pass
        null.flush()
        null.close()
        assert not NULL_TELEMETRY.enabled


class _RaisingNull(NullTelemetry):
    """Disabled telemetry that fails loudly if any site does work anyway.

    ``enabled`` stays False; every recording method raises.  A training
    run that completes with this attached proves the disabled path never
    calls past the ``telemetry.enabled`` check.
    """

    def _forbidden(self, *args, **kwargs):
        raise AssertionError("telemetry work on the disabled path")

    count = gauge = event = _forbidden


def _trainer(backend, telemetry=None, seed=5):
    ds = make_femnist_like(num_writers=6, samples_per_writer=16,
                           num_classes=8, image_size=8, classes_per_writer=4,
                           seed=seed)
    fed = partition_iid(ds, num_clients=6, seed=seed)
    model = make_mlp(64, 8, hidden=(10,), seed=seed)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    return FLTrainer(model, fed, FABTopK(), timing=timing,
                     learning_rate=0.05, batch_size=8, eval_every=3,
                     seed=seed, backend=backend, telemetry=telemetry)


class TestDisabledPath:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_disabled_run_does_no_telemetry_work(self, backend):
        trainer = _trainer(backend, telemetry=_RaisingNull())
        trainer.run(4, k=10)
        trainer.close()

    def test_disabled_run_does_no_telemetry_work_sharded(self):
        trainer = _trainer(ShardedBackend(jobs=2), telemetry=_RaisingNull())
        trainer.run(3, k=10)
        trainer.close()

    def test_default_engine_telemetry_is_the_shared_null(self):
        trainer = _trainer("serial")
        assert trainer.engine.telemetry is NULL_TELEMETRY
        trainer.close()


def _golden_traced_run(trace_path):
    """The pinned deterministic run behind the golden trace report."""
    telemetry = Telemetry(sink=JsonlSink(trace_path))
    ds = make_gaussian_blobs(num_samples=240, num_classes=4, feature_dim=12,
                             separation=3.0, seed=7)
    fed = partition_iid(ds, num_clients=6, seed=7)
    model = make_logistic(12, 4, seed=7)
    timing = TimingModel(dimension=model.dimension, comm_time=8.0)
    trainer = FLTrainer(model, fed, FABTopK(), timing=timing,
                        learning_rate=0.1, batch_size=8, eval_every=3,
                        seed=7, telemetry=telemetry)
    trainer.run(6, k=9)
    telemetry.close()
    return trainer


def _deterministic_subset(summary):
    """The summary minus its wall-clock fields (which vary run to run)."""
    return {
        key: value for key, value in summary.items()
        if key not in ("phase_seconds", "wall_seconds", "span_seconds",
                       "span_seconds_by_process")
    }


class TestTraceReport:
    def test_traced_run_matches_golden_report(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        summary = summarize_trace(trace)
        golden = json.loads(GOLDEN_REPORT.read_text())
        assert _deterministic_subset(summary) == golden

    def test_round_events_cover_every_engine_phase(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        rounds = [e for e in events if e["type"] == "round"]
        assert len(rounds) == 6
        for event in rounds:
            assert set(event["phases"]) == set(ENGINE_PHASES)
            assert all(s >= 0.0 for s in event["phases"].values())
            # NaN losses serialize as null, never as bare NaN.
            assert event["loss"] is None or isinstance(event["loss"], float)

    def test_report_renders_the_rollup(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        report = format_trace_report(summarize_trace(trace))
        assert "trace summary" in report
        assert "rounds:   6" in report
        assert "phase wall-clock" in report
        for phase in ENGINE_PHASES:
            assert phase in report
        assert "uplink:" in report and "downlink:" in report

    def test_summarize_rejects_corrupt_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "x", "seconds": 0.1,'
                       ' "process": "parent"}\n'
                       "not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            summarize_trace(bad)
        bad.write_text('{"type": "span", "name": "only"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            summarize_trace(bad)

    def test_trace_report_cli(self, tmp_path, capsys):
        from repro import cli

        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        assert cli.main(["trace-report", str(trace)]) == 0
        assert "trace summary" in capsys.readouterr().out
        assert cli.main(["trace-report", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rounds"] == 6


class TestInstrumentationCounters:
    def test_sharded_pool_counters_surface(self, tmp_path):
        telemetry = Telemetry(sink=JsonlSink(tmp_path / "trace.jsonl"))
        trainer = _trainer(ShardedBackend(jobs=2), telemetry=telemetry)
        trainer.run(3, k=10)
        trainer.close()
        telemetry.close()
        counters = telemetry.aggregator.counters
        assert counters["pool.ipc_bytes_out"] > 0
        assert counters["pool.ipc_bytes_back"] > 0
        assert counters["pool.model_broadcast_seconds"] >= 0.0
        assert counters["pool.weights_broadcast_seconds"] >= 0.0
        assert counters["pool.register_array"] == 6
        requests = [name for name in counters
                    if name.startswith("pool.worker") and
                    name.endswith(".requests")]
        assert len(requests) == 2
        assert sum(counters[name] for name in requests) == 3 * 2

    def test_virtual_lru_counters_surface(self):
        telemetry = Telemetry()
        fed = VirtualFederation.build(
            population=10, cache_size=2, samples_per_client=6,
            num_classes=4, image_size=8, classes_per_writer=2, seed=3,
        )
        fed.telemetry = telemetry
        for cid in range(4):  # 4 regenerations, 2 evictions at cache_size=2
            fed.client_dataset(cid).x
        fed.client_dataset(3).x  # resident: pure LRU hit
        counters = telemetry.counters
        assert counters["virtual.regenerate"] == 4
        assert counters["virtual.lru_evict"] == 2
        assert counters["virtual.lru_hit"] >= 1

    def test_hibernation_spill_and_restore_counted(self, tmp_path):
        from repro.fl.engine import RoundEngine
        from repro.simulation.heterogeneous import ClientSampler

        telemetry = Telemetry()
        ds = make_gaussian_blobs(num_samples=160, num_classes=4,
                                 feature_dim=12, seed=3)
        fed = partition_iid(ds, num_clients=8, seed=3)
        model = make_logistic(12, 4, seed=3)
        timing = TimingModel(dimension=model.dimension, comm_time=8.0)
        engine = RoundEngine(
            model=model, federation=fed, sparsifier=FABTopK(), timing=timing,
            learning_rate=0.1, batch_size=8, eval_every=100,
            eval_max_samples=200, backend="serial",
            sampler=ClientSampler([c.client_id for c in fed.clients],
                                  count=2, seed=3),
            spill_after=2, telemetry=telemetry, seed=3,
        )
        for _ in range(12):
            engine.run_round(k=6)
        assert telemetry.counters.get("engine.residual_spill", 0) > 0
        assert telemetry.counters.get("engine.residual_restore", 0) > 0


class TestLogging:
    def test_package_logger_has_null_handler(self):
        import logging

        import repro  # noqa: F401 — import installs the handler

        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)

    def test_get_logger_names(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"

    def test_configure_cli_logging_is_idempotent(self):
        import logging

        root = logging.getLogger("repro")
        before = list(root.handlers)
        configure_cli_logging(verbose=False)
        configure_cli_logging(verbose=True)
        added = [h for h in root.handlers if h not in before]
        assert len(added) <= 1
        assert root.level == logging.DEBUG
        configure_cli_logging(verbose=False)
        assert root.level == logging.INFO


class TestHealthMonitor:
    def _round(self, i, loss, participants=6, dropped=0, phases=None):
        return {
            "type": "round", "round": i, "k": 9.0, "round_time": 2.0,
            "cumulative_time": 2.0 * i, "loss": loss, "participants":
            participants, "dropped": dropped, "uplink_elements": 9,
            "downlink_elements": 9, "uplink_bytes": 144,
            "downlink_bytes": 144, "wall_seconds": 0.01,
            "phases": phases or {"local_steps": 0.001},
        }

    def test_clean_run_raises_nothing(self):
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        for i in range(1, 20):
            assert monitor.observe(self._round(i, 1.0 / i)) == []
        summary = monitor.summary()
        assert summary["healthy"] and summary["alerts"] == []
        assert summary["rounds_observed"] == 19

    def test_nan_loss_raises_divergence(self):
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        monitor.observe(self._round(1, 0.9))
        alerts = monitor.observe(self._round(2, float("nan")))
        assert len(alerts) == 1
        assert alerts[0]["detector"] == "divergence"
        assert alerts[0]["severity"] == "critical"
        assert alerts[0]["round"] == 2
        validate_event({"type": "alert", **alerts[0]})
        # Latched: a second NaN round does not re-alert.
        assert monitor.observe(self._round(3, float("nan"))) == []

    def test_loss_explosion_raises_divergence(self):
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        for i in range(1, 5):
            assert monitor.observe(self._round(i, 1.0)) == []
        alerts = monitor.observe(self._round(5, 1.0e4))
        assert [a["detector"] for a in alerts] == ["divergence"]

    def test_none_loss_rounds_are_ignored(self):
        # The engine serializes NaN (non-evaluated) losses as null.
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        for i in range(1, 10):
            assert monitor.observe(self._round(i, None)) == []
        assert monitor.summary()["healthy"]

    def test_drop_rate_accumulation_alarm(self):
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        alerts = []
        for i in range(1, 8):
            # 5/(4+5) ≈ 0.56 of all scheduled uploads dropped.
            alerts += monitor.observe(
                self._round(i, 0.5, participants=4, dropped=5)
            )
        assert [a["detector"] for a in alerts] == ["drop_rate"]
        assert alerts[0]["severity"] == "warning"

    def test_drop_rate_uses_scheduled_upload_denominator(self):
        # ``participants`` counts post-gate survivors, so the rate is
        # dropped/(participants+dropped) — a heavy-drop trace must stay
        # bounded in [0, 1] instead of dividing by survivors only
        # (9 dropped / 1 survivor would read as 900%).
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        alerts = []
        for i in range(1, 8):
            alerts += monitor.observe(
                self._round(i, 0.5, participants=1, dropped=9)
            )
        assert [a["detector"] for a in alerts] == ["drop_rate"]
        rate = alerts[0]["dropped"] / alerts[0]["participants"]
        assert 0.0 <= rate <= 1.0
        assert alerts[0]["participants"] == alerts[0]["dropped"] + 5

    def test_drop_rate_exactly_at_threshold_does_not_alert(self):
        # The detector fires on strictly-greater-than, so a run sitting
        # exactly at the 0.5 threshold (3 dropped vs 3 survivors) stays
        # quiet however long it runs.
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        for i in range(1, 30):
            assert monitor.observe(
                self._round(i, 0.5, participants=3, dropped=3)
            ) == []
        assert monitor.summary()["healthy"]

    def test_flagged_accumulation_alarm(self):
        from repro.obs import HealthMonitor

        monitor = HealthMonitor()
        alerts = []
        for i in range(1, 5):
            alerts += monitor.observe({
                "type": "flagged", "round": i, "client_ids": [7, i],
                "detector": "trimmed_mean", "scores": [0.9, 0.1],
            })
        assert [a["detector"] for a in alerts] == ["flagged_accumulation"]
        assert alerts[0]["client_id"] == 7
        assert alerts[0]["times_flagged"] == 3

    def test_stall_detection_robust_zscore(self):
        from repro.obs import HealthConfig, HealthMonitor, robust_zscore

        assert robust_zscore(1.0, []) == 0.0
        assert robust_zscore(5.0, [1.0, 1.0, 1.0]) == 0.0  # MAD degenerate
        history = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 0.98]
        assert robust_zscore(10.0, history) > 8.0

        monitor = HealthMonitor(HealthConfig(stall_min_seconds=0.05))
        alerts = []
        for i in range(1, 12):
            seconds = 2.0 if i == 11 else 0.1 + 0.001 * (i % 3)
            alerts += monitor.observe(
                self._round(i, 0.5, phases={"local_steps": seconds})
            )
        assert [a["detector"] for a in alerts] == ["stall"]
        assert alerts[0]["phase"] == "local_steps"

    def test_latching_is_per_subject(self):
        # Each (detector, subject) pair alerts exactly once: two stalled
        # phases raise two alerts, and repeating either stays silent.
        from repro.obs import HealthConfig, HealthMonitor

        monitor = HealthMonitor(HealthConfig(stall_min_seconds=0.05))
        alerts = []
        for i in range(1, 11):
            jitter = 0.1 + 0.001 * (i % 3)
            alerts += monitor.observe(self._round(
                i, 0.5, phases={"local_steps": jitter, "aggregate": jitter}
            ))
        assert alerts == []
        for i in range(11, 14):  # every later round stalls both phases
            alerts += monitor.observe(self._round(
                i, 0.5, phases={"local_steps": 5.0, "aggregate": 5.0}
            ))
        assert sorted(a["phase"] for a in alerts) == \
            ["aggregate", "local_steps"]
        assert all(a["detector"] == "stall" for a in alerts)

    def test_eval_phase_excluded_from_stall(self):
        from repro.obs import HealthConfig, HealthMonitor

        monitor = HealthMonitor(HealthConfig(stall_min_seconds=0.0))
        alerts = []
        for i in range(1, 15):
            # eval is bimodal by design: cadence rounds vs skipped rounds.
            seconds = 3.0 if i % 3 == 0 else 0.001
            alerts += monitor.observe(
                self._round(i, 0.5, phases={"eval": seconds})
            )
        assert alerts == []

    def test_scan_trace_flags_injected_nan_loss(self, tmp_path):
        from repro.obs import scan_trace

        trace = tmp_path / "nan.jsonl"
        rows = [self._round(i, 1.0) for i in range(1, 4)]
        rows.append(self._round(4, float("nan")))
        # json.dumps writes bare NaN tokens — exactly the third-party
        # trace shape the scanner must survive (our sink never does).
        trace.write_text("".join(json.dumps(r) + "\n" for r in rows))
        monitor = scan_trace(trace)
        summary = monitor.summary()
        assert not summary["healthy"]
        assert summary["by_detector"] == {"divergence": 1}

    def test_live_health_emits_alert_events(self, tmp_path):
        from repro.obs import HealthMonitor

        def emit(tel, row):
            row = dict(row)
            tel.event(row.pop("type"), **row)

        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path), health=HealthMonitor())
        emit(tel, self._round(1, 0.9))
        emit(tel, self._round(2, 1e6))  # lacks warmup: no alert yet
        for i in range(3, 6):
            emit(tel, self._round(i, 0.5))
        # The engine's wire shape for a diverged (infinite) loss: null
        # plus the non-finite marker, keeping the stream strict JSON.
        inf_row = self._round(6, None)
        inf_row["loss_nonfinite"] = "inf"
        emit(tel, inf_row)
        tel.close()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        alerts = [e for e in events if e["type"] == "alert"]
        assert len(alerts) == 1 and alerts[0]["detector"] == "divergence"
        # Alert events are schema-valid in the stream.
        for event in events:
            validate_event(event)

    def test_infinite_loss_round_trips_as_strict_json(self, tmp_path):
        # End to end through the real engine and a real JsonlSink: a run
        # whose loss diverges to +inf must still write parseable strict
        # JSONL (no bare ``Infinity`` token) and the replayed trace must
        # raise the divergence alert.
        from repro.obs import HealthMonitor, scan_trace

        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path), health=HealthMonitor())
        trainer = _trainer("serial", telemetry=tel)
        trainer.step(9)
        # Blow the weights up so the next evaluated loss (round 3 under
        # eval_every=3) is non-finite.
        trainer.model.set_weights(
            np.full(trainer.model.dimension, 1e300)
        )
        trainer.step(9)
        trainer.step(9)
        tel.close()
        trainer.close()
        rounds = []
        for line in path.read_text().splitlines():
            record = json.loads(line, parse_constant=pytest.fail)
            if record["type"] == "round":
                rounds.append(record)
        diverged = [r for r in rounds if r.get("loss_nonfinite")]
        assert diverged and diverged[-1]["loss"] is None
        summary = scan_trace(path).summary()
        assert not summary["healthy"]
        assert summary["by_detector"]["divergence"] == 1

    def test_trace_report_health_section(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        summary = summarize_trace(trace)
        assert summary["health"]["healthy"]
        assert summary["health"]["alerts"] == []
        report = format_trace_report(summary)
        assert "health:   OK" in report

        bad = tmp_path / "bad.jsonl"
        rows = [self._round(i, 1.0) for i in range(1, 4)]
        rows.append(self._round(4, float("nan")))
        bad.write_text("".join(json.dumps(r) + "\n" for r in rows))
        summary = summarize_trace(bad)
        assert not summary["health"]["healthy"]
        report = format_trace_report(summary)
        assert "divergence" in report and "[critical]" in report


class TestExceptionSafety:
    def test_mid_run_raise_still_flushes_buffered_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = open_telemetry(str(path))
        trainer = _trainer("serial", telemetry=tel)
        with pytest.raises(RuntimeError, match="mid-run"):
            try:
                with tel:
                    trainer.run(2, k=10)
                    tel.count("driver.units", 1)
                    raise RuntimeError("mid-run failure")
            finally:
                trainer.close()
        assert tel.sink._file.closed
        events = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = [e["type"] for e in events]
        assert "round" in kinds
        # close() on the exception path flushed the pending counters.
        assert kinds[-1] == "counters"
        assert events[-1]["counters"]["driver.units"] == 1

    def test_driver_closes_telemetry_when_backend_teardown_fails(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import scenario as scenario_mod
        from repro.experiments.config import ExperimentConfig

        real_build = scenario_mod.build_backend

        def exploding_build(config):
            backend = real_build(config)
            original_close = backend.close

            def close():
                original_close()
                raise RuntimeError("backend teardown failed")

            backend.close = close
            return backend

        monkeypatch.setattr(scenario_mod, "build_backend", exploding_build)
        path = tmp_path / "trace.jsonl"
        config = ExperimentConfig.smoke().with_overrides(
            telemetry=str(path), num_rounds=2,
        )
        with pytest.raises(RuntimeError, match="teardown failed"):
            scenario_mod.run_scenario(config)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        # The sink was flushed and closed despite the backend failure.
        assert any(e["type"] == "round" for e in events)


class TestBenchDiff:
    def _report(self, rps, host=None):
        return {
            "host": host or {
                "timestamp_utc": "2026-08-08T00:00:00+00:00",
                "machine": "x86_64", "cpu_count": 4, "usable_cpus": 4,
            },
            "results": [{
                "model": "mlp", "num_clients": 24, "rounds": 60,
                "rounds_per_second": {"serial": rps, "vectorized": 2 * rps},
                "vectorized_speedup": 2.0,
            }],
        }

    def test_flatten_and_entry(self):
        from repro.obs.export import bench_history_entry

        entry = bench_history_entry("BENCH_engine", self._report(100.0))
        assert entry["bench"] == "BENCH_engine"
        assert entry["host_signature"] == "x86_64/4/4"
        assert entry["metrics"]["mlp.n24.rounds_per_second.serial"] == 100.0
        assert entry["metrics"]["mlp.n24.vectorized_speedup"] == 2.0
        assert len(entry["fingerprint"]) == 16

    def test_colliding_entry_labels_keep_every_metric(self):
        # Two list entries sharing all identifying fields must not fold
        # into one dotted key (the second silently overwrote the first);
        # only the colliding labels gain the list index — unique labels
        # keep their historical metric names.
        from repro.obs.export import flatten_bench_report

        report = {"results": [
            {"backend": "serial", "rounds_per_second": 100.0},
            {"backend": "serial", "rounds_per_second": 80.0},
            {"backend": "vectorized", "rounds_per_second": 250.0},
        ]}
        metrics = flatten_bench_report(report)
        assert metrics["serial.0.rounds_per_second"] == 100.0
        assert metrics["serial.1.rounds_per_second"] == 80.0
        assert metrics["vectorized.rounds_per_second"] == 250.0
        assert "serial.rounds_per_second" not in metrics

    def test_history_append_is_idempotent(self, tmp_path):
        from repro.obs.export import (
            append_bench_history,
            bench_history_entry,
            load_bench_history,
        )

        path = tmp_path / "BENCH_history.jsonl"
        entry = bench_history_entry("BENCH_engine", self._report(100.0))
        assert append_bench_history(path, [entry]) == 1
        assert append_bench_history(path, [entry]) == 0
        other = bench_history_entry("BENCH_engine", self._report(90.0))
        assert append_bench_history(path, [other]) == 1
        assert len(load_bench_history(path)) == 2

    def test_metric_directions(self):
        from repro.obs.export import metric_direction

        assert metric_direction("mlp.rounds_per_second.serial") == "higher"
        assert metric_direction("vectorized_speedup") == "higher"
        assert metric_direction("sweep.cold_seconds") == "lower"
        assert metric_direction("telemetry.enabled_overhead_pct") == "lower"
        assert metric_direction("num_clients") == "info"

    def test_two_x_slowdown_detected(self):
        from repro.obs.export import bench_history_entry, diff_bench_report

        baseline = bench_history_entry("BENCH_engine", self._report(100.0))
        slow = self._report(50.0)  # synthetic 2x slowdown
        diff = diff_bench_report("BENCH_engine", slow, [baseline])
        assert diff["status"] == "regressed"
        regressed = {r["metric"] for r in diff["rows"]
                     if r["status"] == "regressed"}
        assert "mlp.n24.rounds_per_second.serial" in regressed
        # Informational metrics (client counts) never gate.
        assert "mlp.n24.num_clients" not in regressed

    def test_host_mismatch_is_informational(self):
        from repro.obs.export import bench_history_entry, diff_bench_report

        other_host = {"timestamp_utc": "2026-08-01T00:00:00+00:00",
                      "machine": "arm64", "cpu_count": 10, "usable_cpus": 10}
        baseline = bench_history_entry(
            "BENCH_engine", self._report(100.0, host=other_host)
        )
        diff = diff_bench_report(
            "BENCH_engine", self._report(50.0), [baseline]
        )
        assert diff["status"] == "informational"
        assert not diff["host_match"]

    def test_no_baseline_skips(self):
        from repro.obs.export import diff_bench_report

        diff = diff_bench_report("BENCH_engine", self._report(100.0), [])
        assert diff["status"] == "no_baseline"

    def test_bench_diff_cli_exits_nonzero_on_regression(
        self, tmp_path, capsys
    ):
        from repro import cli
        from repro.obs.export import append_bench_history, bench_history_entry

        (tmp_path / "BENCH_engine.json").write_text(
            json.dumps([self._report(50.0)])
        )
        history = tmp_path / "BENCH_history.jsonl"
        append_bench_history(history, [
            bench_history_entry("BENCH_engine", self._report(100.0)),
        ])
        assert cli.main(["bench-diff", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out and "rounds_per_second" in out

        assert cli.main(
            ["bench-diff", "--dir", str(tmp_path), "--json"]
        ) == 1
        diffs = json.loads(capsys.readouterr().out)
        assert diffs[0]["status"] == "regressed"

        # Within tolerance: a matching snapshot passes.
        (tmp_path / "BENCH_engine.json").write_text(
            json.dumps([self._report(95.0)])
        )
        assert cli.main(["bench-diff", "--dir", str(tmp_path)]) == 0

    def test_backfill_records_committed_reports(self, tmp_path):
        import sys

        sys.path.insert(0, str(
            pathlib.Path(__file__).parent.parent / "benchmarks"
        ))
        try:
            import history as bench_history
        finally:
            sys.path.pop(0)
        (tmp_path / "BENCH_engine.json").write_text(
            json.dumps([self._report(100.0), self._report(90.0)])
        )
        out = tmp_path / "BENCH_history.jsonl"
        assert bench_history.backfill(tmp_path, out) == 2
        assert bench_history.backfill(tmp_path, out) == 0  # idempotent
        assert bench_history.record_report(
            tmp_path / "BENCH_engine.json", self._report(80.0), out
        ) == 1


class TestConfigThreading:
    def test_config_round_trips_telemetry(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.smoke().with_overrides(
            telemetry="results/trace.jsonl"
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="telemetry"):
            ExperimentConfig.smoke().with_overrides(telemetry=7)

    def test_cli_exposes_telemetry_flags(self):
        from repro import cli

        parser = cli.build_parser()
        args = parser.parse_args(
            ["scenario", "--telemetry", "t.jsonl", "--verbose"]
        )
        assert args.telemetry == "t.jsonl"
        assert args.verbose
        args = parser.parse_args(["sweep", "--telemetry", "t.jsonl"])
        assert args.telemetry == "t.jsonl"
        args = parser.parse_args(["trace-report", "t.jsonl", "--json"])
        assert args.trace_file == "t.jsonl"
        assert args.json
