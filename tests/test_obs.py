"""Telemetry subsystem tests.

Four layers of guarantees:

1. **Schema** — every event type validates its required fields; unknown
   types, missing fields, and unknown engine phases are rejected.
2. **Sinks and facade** — JSONL append semantics, numpy coercion,
   counter/gauge/span/flush behaviour, and the no-op ``NullTelemetry``.
3. **Zero-overhead-when-disabled** — a structural proof: a raising
   ``NullTelemetry`` subclass rides through full training runs without
   a single telemetry method doing work, so the disabled path is exactly
   one attribute check per site.
4. **End-to-end traces** — a traced run emits schema-valid events
   covering every engine phase, the trace-report rollup matches a golden
   snapshot of the deterministic fields, and pool/virtual counters
   surface from the sharded backend and virtual federations.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_femnist_like, make_gaussian_blobs
from repro.data.virtual import VirtualFederation
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic, make_mlp
from repro.obs import (
    ENGINE_PHASES,
    EVENT_TYPES,
    NULL_TELEMETRY,
    JsonlSink,
    MemoryAggregator,
    NullTelemetry,
    Telemetry,
    configure_cli_logging,
    encode_event,
    format_trace_report,
    get_logger,
    open_telemetry,
    summarize_trace,
    validate_event,
)
from repro.parallel.sharded import ShardedBackend
from repro.simulation.timing import TimingModel
from repro.sparsify.fab_topk import FABTopK

GOLDEN_REPORT = (
    pathlib.Path(__file__).parent / "data" / "golden_trace_report.json"
)

#: one schema-valid instance of every event type
VALID_EVENTS = {
    "round": {
        "type": "round", "round": 1, "k": 9.0, "round_time": 2.0,
        "cumulative_time": 2.0, "participants": 6, "uplink_elements": 9,
        "downlink_elements": 9, "uplink_bytes": 864, "downlink_bytes": 144,
        "wall_seconds": 0.01, "phases": {"sample": 0.001, "eval": 0.002},
    },
    "span": {"type": "span", "name": "collect", "seconds": 0.5},
    "drop": {"type": "drop", "round": 3, "client_ids": [1, 4],
             "deadline": 2.5, "close_time": 2.5},
    "recovery": {"type": "recovery", "round": 5, "client_ids": [4]},
    "probe": {"type": "probe", "round": 2, "k_continuous": 14.2,
              "probe_k": 15, "loss_prev": 1.2, "loss_now": 1.1,
              "loss_probe": 1.05},
    "deadline": {"type": "deadline", "round": 4, "deadline": 3.0,
                 "arrived": 5, "dropped": 1, "round_time": 3.0},
    "flagged": {"type": "flagged", "round": 6, "client_ids": [2],
                "detector": "trimmed_mean", "scores": [0.75]},
    "counters": {"type": "counters", "counters": {"pool.ipc_bytes_out": 10},
                 "gauges": {}},
}


class TestEventSchema:
    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_valid_event_passes(self, kind):
        validate_event(VALID_EVENTS[kind])

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_extra_fields_allowed(self, kind):
        validate_event({**VALID_EVENTS[kind], "figure": "fig4",
                        "method": "fab-top-k"})

    @pytest.mark.parametrize("kind", sorted(EVENT_TYPES))
    def test_missing_required_field_rejected(self, kind):
        for field in EVENT_TYPES[kind]:
            broken = dict(VALID_EVENTS[kind])
            del broken[field]
            with pytest.raises(ValueError, match="missing"):
                validate_event(broken)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"type": "mystery"})
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"name": "no type at all"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_event(["round"])

    def test_unknown_phase_rejected(self):
        broken = dict(VALID_EVENTS["round"])
        broken["phases"] = {"sample": 0.1, "quantum_leap": 0.2}
        with pytest.raises(ValueError, match="unknown engine phases"):
            validate_event(broken)
        broken["phases"] = [0.1, 0.2]
        with pytest.raises(ValueError, match="phases"):
            validate_event(broken)


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(VALID_EVENTS["span"])
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == VALID_EVENTS["span"]

    def test_jsonl_appends_across_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            sink.write(VALID_EVENTS["recovery"])
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_jsonl_creates_parent_directories(self, tmp_path):
        sink = JsonlSink(tmp_path / "deep" / "down" / "trace.jsonl")
        sink.write(VALID_EVENTS["span"])
        sink.close()
        assert (tmp_path / "deep" / "down" / "trace.jsonl").exists()

    def test_encode_event_coerces_numpy_scalars(self):
        line = encode_event({
            "type": "span", "name": "x",
            "seconds": np.float64(0.25), "count": np.int64(3),
        })
        assert json.loads(line) == {
            "type": "span", "name": "x", "seconds": 0.25, "count": 3,
        }

    def test_encode_event_rejects_unserializable(self):
        with pytest.raises(TypeError, match="not JSON serializable"):
            encode_event({"type": "span", "obj": object()})

    def test_aggregator_rollup(self):
        agg = MemoryAggregator()
        for kind in sorted(EVENT_TYPES):
            agg.add(VALID_EVENTS[kind])
        summary = agg.summary()
        assert summary["events"] == {k: 1 for k in sorted(EVENT_TYPES)}
        assert summary["rounds"] == 1
        assert summary["phases"] == ["eval", "sample"]
        assert summary["uplink_elements"] == 9
        assert summary["uplink_bytes"] == 864
        assert summary["downlink_bytes"] == 144
        assert summary["dropped_uploads"] == 2
        assert summary["recovered_clients"] == 1
        assert summary["span_seconds"] == {"collect": 0.5}
        assert summary["counters"] == {"pool.ipc_bytes_out": 10}


class TestTelemetryFacade:
    def test_counters_accumulate_gauges_overwrite(self):
        tel = Telemetry()
        tel.count("a")
        tel.count("a", 4)
        tel.gauge("g", 1.0)
        tel.gauge("g", 2.5)
        assert tel.counters == {"a": 5}
        assert tel.gauges == {"g": 2.5}

    def test_annotations_ride_on_events(self):
        tel = Telemetry()
        tel.annotate(figure="fig4", method="fab-top-k")
        tel.event("span", name="x", seconds=0.1)
        assert tel.aggregator.event_counts == {"span": 1}
        # Events are validated before reaching the aggregator/sink.
        with pytest.raises(ValueError, match="missing"):
            tel.event("span", name="unfinished")

    def test_span_times_a_block(self):
        tel = Telemetry()
        with tel.span("work", figure="fig1"):
            pass
        assert tel.aggregator.span_seconds["work"] >= 0.0

    def test_flush_snapshots_and_resets(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(sink=JsonlSink(path))
        tel.count("pool.ipc_bytes_out", 128)
        tel.gauge("workers", 2)
        tel.flush()
        assert tel.counters == {} and tel.gauges == {}
        tel.flush()  # empty flush emits nothing
        tel.count("pool.ipc_bytes_out", 64)
        tel.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["type"] for e in events] == ["counters", "counters"]
        assert events[0]["counters"] == {"pool.ipc_bytes_out": 128}
        assert events[0]["gauges"] == {"workers": 2}
        # Delta semantics: the second snapshot never double-counts.
        assert events[1]["counters"] == {"pool.ipc_bytes_out": 64}
        # The aggregator sums the deltas back to the true total.
        assert tel.aggregator.counters == {"pool.ipc_bytes_out": 192}

    def test_open_telemetry(self, tmp_path):
        assert open_telemetry(None) is NULL_TELEMETRY
        assert open_telemetry("") is NULL_TELEMETRY
        tel = open_telemetry(str(tmp_path / "trace.jsonl"))
        assert tel.enabled
        tel.close()

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        null.count("x")
        null.gauge("x", 1.0)
        null.event("round")  # no validation, no storage
        null.annotate(figure="fig1")
        with null.span("x"):
            pass
        null.flush()
        null.close()
        assert not NULL_TELEMETRY.enabled


class _RaisingNull(NullTelemetry):
    """Disabled telemetry that fails loudly if any site does work anyway.

    ``enabled`` stays False; every recording method raises.  A training
    run that completes with this attached proves the disabled path never
    calls past the ``telemetry.enabled`` check.
    """

    def _forbidden(self, *args, **kwargs):
        raise AssertionError("telemetry work on the disabled path")

    count = gauge = event = _forbidden


def _trainer(backend, telemetry=None, seed=5):
    ds = make_femnist_like(num_writers=6, samples_per_writer=16,
                           num_classes=8, image_size=8, classes_per_writer=4,
                           seed=seed)
    fed = partition_iid(ds, num_clients=6, seed=seed)
    model = make_mlp(64, 8, hidden=(10,), seed=seed)
    timing = TimingModel(dimension=model.dimension, comm_time=10.0)
    return FLTrainer(model, fed, FABTopK(), timing=timing,
                     learning_rate=0.05, batch_size=8, eval_every=3,
                     seed=seed, backend=backend, telemetry=telemetry)


class TestDisabledPath:
    @pytest.mark.parametrize("backend", ["serial", "vectorized"])
    def test_disabled_run_does_no_telemetry_work(self, backend):
        trainer = _trainer(backend, telemetry=_RaisingNull())
        trainer.run(4, k=10)
        trainer.close()

    def test_disabled_run_does_no_telemetry_work_sharded(self):
        trainer = _trainer(ShardedBackend(jobs=2), telemetry=_RaisingNull())
        trainer.run(3, k=10)
        trainer.close()

    def test_default_engine_telemetry_is_the_shared_null(self):
        trainer = _trainer("serial")
        assert trainer.engine.telemetry is NULL_TELEMETRY
        trainer.close()


def _golden_traced_run(trace_path):
    """The pinned deterministic run behind the golden trace report."""
    telemetry = Telemetry(sink=JsonlSink(trace_path))
    ds = make_gaussian_blobs(num_samples=240, num_classes=4, feature_dim=12,
                             separation=3.0, seed=7)
    fed = partition_iid(ds, num_clients=6, seed=7)
    model = make_logistic(12, 4, seed=7)
    timing = TimingModel(dimension=model.dimension, comm_time=8.0)
    trainer = FLTrainer(model, fed, FABTopK(), timing=timing,
                        learning_rate=0.1, batch_size=8, eval_every=3,
                        seed=7, telemetry=telemetry)
    trainer.run(6, k=9)
    telemetry.close()
    return trainer


def _deterministic_subset(summary):
    """The summary minus its wall-clock fields (which vary run to run)."""
    return {
        key: value for key, value in summary.items()
        if key not in ("phase_seconds", "wall_seconds", "span_seconds")
    }


class TestTraceReport:
    def test_traced_run_matches_golden_report(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        summary = summarize_trace(trace)
        golden = json.loads(GOLDEN_REPORT.read_text())
        assert _deterministic_subset(summary) == golden

    def test_round_events_cover_every_engine_phase(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        rounds = [e for e in events if e["type"] == "round"]
        assert len(rounds) == 6
        for event in rounds:
            assert set(event["phases"]) == set(ENGINE_PHASES)
            assert all(s >= 0.0 for s in event["phases"].values())
            # NaN losses serialize as null, never as bare NaN.
            assert event["loss"] is None or isinstance(event["loss"], float)

    def test_report_renders_the_rollup(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        report = format_trace_report(summarize_trace(trace))
        assert "trace summary" in report
        assert "rounds:   6" in report
        assert "phase wall-clock" in report
        for phase in ENGINE_PHASES:
            assert phase in report
        assert "uplink:" in report and "downlink:" in report

    def test_summarize_rejects_corrupt_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "name": "x", "seconds": 0.1}\n'
                       "not json\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            summarize_trace(bad)
        bad.write_text('{"type": "span", "name": "only"}\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            summarize_trace(bad)

    def test_trace_report_cli(self, tmp_path, capsys):
        from repro import cli

        trace = tmp_path / "trace.jsonl"
        _golden_traced_run(trace)
        assert cli.main(["trace-report", str(trace)]) == 0
        assert "trace summary" in capsys.readouterr().out
        assert cli.main(["trace-report", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["rounds"] == 6


class TestInstrumentationCounters:
    def test_sharded_pool_counters_surface(self, tmp_path):
        telemetry = Telemetry(sink=JsonlSink(tmp_path / "trace.jsonl"))
        trainer = _trainer(ShardedBackend(jobs=2), telemetry=telemetry)
        trainer.run(3, k=10)
        trainer.close()
        telemetry.close()
        counters = telemetry.aggregator.counters
        assert counters["pool.ipc_bytes_out"] > 0
        assert counters["pool.ipc_bytes_back"] > 0
        assert counters["pool.model_broadcast_seconds"] >= 0.0
        assert counters["pool.weights_broadcast_seconds"] >= 0.0
        assert counters["pool.register_array"] == 6
        requests = [name for name in counters
                    if name.startswith("pool.worker") and
                    name.endswith(".requests")]
        assert len(requests) == 2
        assert sum(counters[name] for name in requests) == 3 * 2

    def test_virtual_lru_counters_surface(self):
        telemetry = Telemetry()
        fed = VirtualFederation.build(
            population=10, cache_size=2, samples_per_client=6,
            num_classes=4, image_size=8, classes_per_writer=2, seed=3,
        )
        fed.telemetry = telemetry
        for cid in range(4):  # 4 regenerations, 2 evictions at cache_size=2
            fed.client_dataset(cid).x
        fed.client_dataset(3).x  # resident: pure LRU hit
        counters = telemetry.counters
        assert counters["virtual.regenerate"] == 4
        assert counters["virtual.lru_evict"] == 2
        assert counters["virtual.lru_hit"] >= 1

    def test_hibernation_spill_and_restore_counted(self, tmp_path):
        from repro.fl.engine import RoundEngine
        from repro.simulation.heterogeneous import ClientSampler

        telemetry = Telemetry()
        ds = make_gaussian_blobs(num_samples=160, num_classes=4,
                                 feature_dim=12, seed=3)
        fed = partition_iid(ds, num_clients=8, seed=3)
        model = make_logistic(12, 4, seed=3)
        timing = TimingModel(dimension=model.dimension, comm_time=8.0)
        engine = RoundEngine(
            model=model, federation=fed, sparsifier=FABTopK(), timing=timing,
            learning_rate=0.1, batch_size=8, eval_every=100,
            eval_max_samples=200, backend="serial",
            sampler=ClientSampler([c.client_id for c in fed.clients],
                                  count=2, seed=3),
            spill_after=2, telemetry=telemetry, seed=3,
        )
        for _ in range(12):
            engine.run_round(k=6)
        assert telemetry.counters.get("engine.residual_spill", 0) > 0
        assert telemetry.counters.get("engine.residual_restore", 0) > 0


class TestLogging:
    def test_package_logger_has_null_handler(self):
        import logging

        import repro  # noqa: F401 — import installs the handler

        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler)
                   for h in root.handlers)

    def test_get_logger_names(self):
        assert get_logger().name == "repro"
        assert get_logger("cli").name == "repro.cli"

    def test_configure_cli_logging_is_idempotent(self):
        import logging

        root = logging.getLogger("repro")
        before = list(root.handlers)
        configure_cli_logging(verbose=False)
        configure_cli_logging(verbose=True)
        added = [h for h in root.handlers if h not in before]
        assert len(added) <= 1
        assert root.level == logging.DEBUG
        configure_cli_logging(verbose=False)
        assert root.level == logging.INFO


class TestConfigThreading:
    def test_config_round_trips_telemetry(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.smoke().with_overrides(
            telemetry="results/trace.jsonl"
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="telemetry"):
            ExperimentConfig.smoke().with_overrides(telemetry=7)

    def test_cli_exposes_telemetry_flags(self):
        from repro import cli

        parser = cli.build_parser()
        args = parser.parse_args(
            ["scenario", "--telemetry", "t.jsonl", "--verbose"]
        )
        assert args.telemetry == "t.jsonl"
        assert args.verbose
        args = parser.parse_args(["sweep", "--telemetry", "t.jsonl"])
        assert args.telemetry == "t.jsonl"
        args = parser.parse_args(["trace-report", "t.jsonl", "--json"])
        assert args.trace_file == "t.jsonl"
        assert args.json
