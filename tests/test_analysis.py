"""Tests for the contraction and convergence analysis tooling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contraction import (
    contraction_coefficient,
    empirical_contraction,
    topk_contraction_bound,
)
from repro.analysis.convergence import (
    fit_exponential,
    fit_power_law,
    time_to_target,
)

RNG = np.random.default_rng(13)


class TestContractionBound:
    def test_values(self):
        assert topk_contraction_bound(1, 4) == pytest.approx(0.75)
        assert topk_contraction_bound(4, 4) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_contraction_bound(0, 4)
        with pytest.raises(ValueError):
            topk_contraction_bound(5, 4)


class TestContractionCoefficient:
    def test_uniform_vector_hits_bound(self):
        x = np.ones(10)
        assert contraction_coefficient(x, 3) == pytest.approx(0.7)

    def test_sparse_vector_zero(self):
        x = np.zeros(10)
        x[2], x[7] = 3.0, -1.0
        assert contraction_coefficient(x, 2) == 0.0

    def test_zero_vector(self):
        assert contraction_coefficient(np.zeros(5), 2) == 0.0

    def test_heavy_tail_contracts_faster_than_bound(self):
        # Exponentially decaying magnitudes: top 10% carries most energy.
        x = np.exp(-np.arange(100) / 5.0)
        measured = contraction_coefficient(x, 10)
        assert measured < 0.1 < topk_contraction_bound(10, 100)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_never_exceeds_bound(self, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(50)
        assert contraction_coefficient(x, k) <= (
            topk_contraction_bound(k, 50) + 1e-12
        )


class TestEmpiricalContraction:
    def test_statistics(self):
        vectors = [RNG.standard_normal(20) for _ in range(5)]
        stats = empirical_contraction(vectors, k=5)
        assert 0 <= stats["mean"] <= stats["max"] <= stats["bound"] + 1e-12
        assert stats["dimension"] == 20

    def test_matrix_input(self):
        stats = empirical_contraction(RNG.standard_normal((4, 15)), k=3)
        assert stats["k"] == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_contraction([], k=1)

    def test_real_gradient_beats_worst_case(self):
        from repro.data.synthetic import make_gaussian_blobs
        from repro.nn.models import make_logistic

        ds = make_gaussian_blobs(num_samples=100, num_classes=3,
                                 feature_dim=8, separation=4.0, seed=0)
        model = make_logistic(8, 3, seed=0)
        grads = []
        for _ in range(5):
            grad, _ = model.gradient(ds.x, ds.y)
            model.set_weights(model.get_weights() - 0.1 * grad)
            grads.append(grad)
        k = model.dimension // 10
        stats = empirical_contraction(grads, k=k)
        assert stats["mean"] < stats["bound"]


class TestConvergenceFits:
    def test_power_law_recovers_parameters(self):
        t = np.linspace(1, 100, 60)
        y = 0.5 + 3.0 * t**-0.8
        fit = fit_power_law(t, y, floor=0.5)
        assert fit.rate == pytest.approx(0.8, rel=0.02)
        assert fit.amplitude == pytest.approx(3.0, rel=0.05)
        assert fit.r_squared > 0.99

    def test_exponential_recovers_parameters(self):
        t = np.linspace(0, 10, 50)
        y = 1.0 + 2.0 * np.exp(-0.5 * t)
        fit = fit_exponential(t, y, floor=1.0)
        assert fit.rate == pytest.approx(0.5, rel=0.02)
        assert fit.r_squared > 0.99

    def test_predict_roundtrip(self):
        t = np.linspace(1, 50, 30)
        y = 0.1 + 5.0 * t**-1.0
        fit = fit_power_law(t, y, floor=0.1)
        np.testing.assert_allclose(fit.predict(t), y, rtol=0.05)

    def test_auto_floor(self):
        t = np.linspace(1, 100, 40)
        y = 2.0 + 4.0 * t**-0.6
        fit = fit_power_law(t, y)  # floor estimated
        assert fit.floor < y.min()
        assert fit.r_squared > 0.9

    def test_noisy_fit_reasonable(self):
        t = np.linspace(1, 200, 100)
        y = 0.3 + 2.0 * t**-0.7 + RNG.normal(0, 0.01, t.size)
        fit = fit_power_law(t, y, floor=0.25)
        assert 0.4 < fit.rate < 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2])  # too few points
        with pytest.raises(ValueError):
            fit_power_law([0, 1, 2], [3, 2, 1])  # nonpositive time
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [3, 2, 1], floor=5.0)  # floor above
        with pytest.raises(ValueError):
            fit_exponential([1, 2, 3], [[3], [2], [1]])  # bad shape

    def test_nan_points_dropped(self):
        t = np.linspace(1, 100, 50)
        y = 0.5 + 3.0 * t**-0.8
        y[::7] = np.nan
        fit = fit_power_law(t, y, floor=0.5)
        assert fit.r_squared > 0.99


class TestTimeToTarget:
    def test_exact_hit(self):
        assert time_to_target([1, 2, 3], [5.0, 3.0, 1.0], 3.0) == 2.0

    def test_interpolated(self):
        t = time_to_target([1, 2], [4.0, 2.0], 3.0)
        assert t == pytest.approx(1.5)

    def test_never_reached(self):
        assert time_to_target([1, 2, 3], [5.0, 4.0, 3.5], 1.0) is None

    def test_noisy_curve_uses_running_min(self):
        # Loss bounces back above target after reaching it; the first
        # crossing still counts.
        t = time_to_target([1, 2, 3, 4], [5.0, 2.0, 6.0, 1.0], 2.5)
        assert t is not None and t < 2.01

    def test_target_met_at_first_point(self):
        assert time_to_target([2, 3], [1.0, 0.5], 1.5) == 2.0
