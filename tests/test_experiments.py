"""Integration tests for the per-figure experiment drivers (smoke scale).

These validate that each driver runs end-to-end, produces the right
figure structure, and — where cheap enough — that the paper's qualitative
claims hold at smoke scale.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig4 import METHODS, run_fig4
from repro.experiments.fig5 import make_policy, run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_cross_application, run_fig7, run_fig8
from repro.experiments.runner import (
    FigureData,
    Series,
    build_federation,
    build_model,
    build_search_interval,
    build_timing,
    contribution_cdf,
    text_table,
)


@pytest.fixture(scope="module")
def smoke():
    return ExperimentConfig.smoke()


class TestConfig:
    def test_presets_valid(self):
        for preset in (ExperimentConfig.smoke, ExperimentConfig.default,
                       ExperimentConfig.paper_scale, ExperimentConfig.cifar_default):
            cfg = preset()
            assert cfg.num_rounds >= 1

    def test_with_overrides(self, smoke):
        cfg = smoke.with_overrides(comm_time=50.0)
        assert cfg.comm_time == 50.0
        assert smoke.comm_time != 50.0 or smoke.comm_time == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="imagenet")
        with pytest.raises(ValueError):
            ExperimentConfig(num_rounds=0)
        with pytest.raises(ValueError):
            ExperimentConfig(kmin_fraction=0.0)


class TestRunnerHelpers:
    def test_build_federation_femnist(self, smoke):
        fed = build_federation(smoke)
        assert fed.num_clients == smoke.num_clients

    def test_build_federation_cifar(self):
        cfg = ExperimentConfig.cifar_default().with_overrides(
            num_clients=10, samples_per_client=10
        )
        fed = build_federation(cfg)
        assert fed.num_clients == 10
        for c in fed.clients:
            assert np.unique(c.y).size == 1

    def test_build_model_dimension(self, smoke):
        model = build_model(smoke)
        expected_in = smoke.image_size**2
        assert model.dimension == (
            expected_in * 8 + 8 + 8 * smoke.num_classes + smoke.num_classes
        )

    def test_build_timing_override(self, smoke):
        tm = build_timing(smoke, dimension=100, comm_time=42.0)
        assert tm.comm_time == 42.0

    def test_search_interval_follows_paper(self, smoke):
        interval = build_search_interval(smoke, dimension=10_000)
        assert interval.kmin == pytest.approx(0.002 * 10_000)
        assert interval.kmax == 10_000

    def test_series_y_at(self):
        s = Series("a", [1.0, 2.0, 3.0], [10.0, 5.0, 2.0])
        assert s.y_at(0.5) == 10.0
        assert s.y_at(2.5) == 5.0
        assert s.y_at(99.0) == 2.0

    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("a", [1.0], [1.0, 2.0])

    def test_figure_data_csv(self):
        fig = FigureData("t")
        fig.add("a", [1, 2], [3, 4])
        csv_text = fig.to_csv()
        assert "series,x,y" in csv_text
        assert "a,1,3" in csv_text

    def test_figure_get_missing(self):
        with pytest.raises(KeyError):
            FigureData("t").get("nope")

    def test_text_table(self):
        out = text_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_contribution_cdf(self):
        values, cdf = contribution_cdf({0: 5, 1: 3, 2: 8})
        np.testing.assert_array_equal(values, [3, 5, 8])
        np.testing.assert_allclose(cdf, [1 / 3, 2 / 3, 1.0])
        with pytest.raises(ValueError):
            contribution_cdf({})


class TestFig1:
    def test_runs_and_validates_assumption(self, smoke):
        result = run_fig1(
            smoke, pre_ks=[200, 50], k_common=50, post_rounds=15,
        )
        assert len(result.figure.series) == 2
        # Assumption 1: post-switch trajectories should stay close
        # relative to the loss scale.
        scale = max(max(s.y) for s in result.figure.series)
        assert result.max_deviation() < 0.5 * scale

    def test_pre_rounds_recorded(self, smoke):
        result = run_fig1(smoke, pre_ks=[200], k_common=50, post_rounds=5)
        assert list(result.pre_rounds) == [200]
        assert result.pre_rounds[200] >= 1

    def test_default_pre_ks_cover_range(self, smoke):
        result = run_fig1(smoke, post_rounds=3)
        assert len(result.figure.series) >= 3


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        cfg = ExperimentConfig.smoke().with_overrides(num_rounds=40)
        return run_fig4(cfg, k=20)

    def test_all_methods_present(self, result):
        assert set(result.histories) == set(METHODS)
        assert set(result.loss_vs_time.labels()) == set(METHODS)

    def test_all_methods_respect_budget_roughly(self, result):
        times = {m: h.total_time for m, h in result.histories.items()}
        budget = max(times.values())
        for m, t in times.items():
            assert t <= budget * 1.6

    def test_losses_decrease(self, result):
        for method, history in result.histories.items():
            losses = [r.loss for r in history if r.loss == r.loss]
            assert losses[-1] < losses[0], method

    def test_fab_fairness_floor_beats_fub(self, result):
        assert result.min_client_contribution("fab-top-k") >= (
            result.min_client_contribution("fub-top-k")
        )

    def test_cdf_panel_has_topk_methods(self, result):
        assert "fab-top-k" in result.contribution_cdf.labels()
        assert "fub-top-k" in result.contribution_cdf.labels()

    def test_ranking_api(self, result):
        t = result.histories["fab-top-k"].total_time / 2
        ranking = result.ranking_at_time(t)
        assert len(ranking) == len(METHODS)


class TestFig5:
    def test_runs_all_policies(self):
        cfg = ExperimentConfig.smoke().with_overrides(num_rounds=20)
        result = run_fig5(cfg)
        assert set(result.histories) == {
            "proposed", "value-based", "exp3", "continuous-bandit"
        }
        for s in result.k_traces.series:
            assert len(s.y) == 20

    def test_k_stability_computed(self):
        cfg = ExperimentConfig.smoke().with_overrides(num_rounds=20)
        result = run_fig5(cfg, policies=("proposed", "exp3"))
        stability = result.k_stability()
        assert set(stability) == {"proposed", "exp3"}

    def test_make_policy_unknown(self, smoke):
        with pytest.raises(ValueError):
            make_policy("nope", smoke, 100)


class TestFig6:
    def test_runs_both_algorithms(self):
        cfg = ExperimentConfig.smoke().with_overrides(num_rounds=25)
        result = run_fig6(cfg, comm_time=100.0)
        assert set(result.histories) == {"algorithm2", "algorithm3"}
        fluct = result.k_fluctuation()
        assert set(fluct) == {"algorithm2", "algorithm3"}


class TestFig7And8:
    def test_cross_application_structure(self):
        cfg = ExperimentConfig.smoke().with_overrides(num_rounds=15)
        result = run_cross_application(
            cfg, comm_times=(1.0, 50.0), learn_rounds=15,
        )
        assert set(result.sequences) == {1.0, 50.0}
        assert len(result.final_loss) == 4
        assert result.k_traces is not None
        # API sanity.
        result.mean_k(1.0)
        result.spread_at(50.0)
        assert result.matched_sequence_rank(1.0) in (0, 1)

    def test_fig7_requires_femnist(self):
        with pytest.raises(ValueError):
            run_fig7(ExperimentConfig.cifar_default())

    def test_fig8_requires_cifar(self):
        with pytest.raises(ValueError):
            run_fig8(ExperimentConfig.smoke())

    def test_fig8_smoke(self):
        cfg = ExperimentConfig.cifar_default().with_overrides(
            num_clients=10, samples_per_client=10, hidden=(8,),
            num_rounds=10, image_size=8,
        )
        result = run_fig8(cfg, comm_times=(1.0, 50.0), learn_rounds=10)
        assert set(result.sequences) == {1.0, 50.0}
