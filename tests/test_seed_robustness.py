"""Seed-robustness checks of the paper's key qualitative claims.

The figure benchmarks run one seed at benchmark scale; these tests rerun
the two headline claims at smoke scale across several seeds to make sure
the reproduction does not hinge on a lucky draw:

1. Fig. 4 core: FAB-top-k beats the non-accumulating periodic-k and the
   always-send-all baseline in loss at equal normalized time.
2. Fig. 7 core: the adaptive algorithm learns a smaller k when
   communication is more expensive.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_federation,
    build_model,
    build_search_interval,
    build_timing,
)
from repro.fl.fedavg import AlwaysSendAllTrainer
from repro.fl.trainer import FLTrainer
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.policy import SignPolicy
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.periodic import PeriodicK

SEEDS = (0, 1, 2)


def smoke_config(seed):
    return ExperimentConfig(
        num_clients=8, samples_per_client=20, image_size=8,
        num_classes=8, classes_per_writer=3, hidden=(12,),
        learning_rate=0.05, batch_size=16, comm_time=10.0,
        num_rounds=120, eval_every=10, eval_max_samples=200, seed=seed,
    )


def run_fixed_k(config, sparsifier_factory, time_budget, k):
    model = build_model(config)
    federation = build_federation(config)
    timing = build_timing(config, model.dimension)
    trainer = FLTrainer(model, federation, sparsifier_factory(model), timing=timing,
                        learning_rate=config.learning_rate,
                        batch_size=config.batch_size,
                        eval_every=config.eval_every,
                        eval_max_samples=config.eval_max_samples,
                        seed=config.seed)
    while trainer.clock < time_budget:
        trainer.step(k)
    return trainer.history.last_evaluated_loss


@pytest.mark.parametrize("seed", SEEDS)
def test_fab_beats_weak_baselines_across_seeds(seed):
    config = smoke_config(seed)
    model = build_model(config)
    k = max(2, int(0.4 * model.dimension / config.num_clients))
    timing = build_timing(config, model.dimension)
    budget = config.num_rounds * timing.sparse_round(k, k).total

    fab = run_fixed_k(config, lambda m: FABTopK(), budget, k)
    periodic = run_fixed_k(
        config, lambda m: PeriodicK(m.dimension, seed=seed), budget, k
    )

    model_b = build_model(config)
    federation = build_federation(config)
    dense_trainer = AlwaysSendAllTrainer(
        model_b, federation, timing,
        learning_rate=config.learning_rate, batch_size=config.batch_size,
        eval_every=config.eval_every,
        eval_max_samples=config.eval_max_samples, seed=seed,
    )
    while dense_trainer.clock < budget:
        dense_trainer.step()
    dense = dense_trainer.history.last_evaluated_loss

    assert fab < periodic, f"seed {seed}: FAB {fab} vs periodic {periodic}"
    assert fab < dense, f"seed {seed}: FAB {fab} vs send-all {dense}"


@pytest.mark.parametrize("seed", SEEDS)
def test_learned_k_decreases_with_comm_time_across_seeds(seed):
    config = smoke_config(seed)

    def learn_mean_k(comm_time):
        model = build_model(config)
        federation = build_federation(config)
        timing = build_timing(config, model.dimension, comm_time)
        interval = build_search_interval(config, model.dimension)
        policy = SignPolicy(AdaptiveSignOGD(interval, alpha=1.5,
                                            update_window=10))
        trainer = AdaptiveKTrainer(
            model, federation, FABTopK(), policy, timing,
            learning_rate=config.learning_rate,
            batch_size=config.batch_size, eval_every=20,
            eval_max_samples=config.eval_max_samples, seed=seed,
        )
        trainer.run(config.num_rounds)
        return float(np.mean(trainer.history.ks()[-40:]))

    cheap = learn_mean_k(0.05)
    expensive = learn_mean_k(100.0)
    assert expensive < cheap, (
        f"seed {seed}: k(beta=100)={expensive:.0f} "
        f"not below k(beta=0.05)={cheap:.0f}"
    )
