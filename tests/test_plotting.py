"""Tests for the ASCII figure renderer."""

import math

import pytest

from repro.experiments.plotting import render_figure
from repro.experiments.runner import FigureData


def make_figure():
    fig = FigureData("demo")
    fig.add("down", [0.0, 1.0, 2.0, 3.0], [4.0, 3.0, 2.0, 1.0])
    fig.add("up", [0.0, 1.0, 2.0, 3.0], [1.0, 2.0, 3.0, 4.0])
    return fig


class TestRenderFigure:
    def test_contains_title_legend_and_markers(self):
        out = render_figure(make_figure())
        assert out.startswith("demo")
        assert "o = down" in out
        assert "x = up" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = render_figure(make_figure())
        assert "4" in out  # y max
        assert "1" in out  # y min
        assert "0" in out and "3" in out  # x range

    def test_grid_dimensions(self):
        out = render_figure(make_figure(), width=40, height=10)
        chart_lines = [line for line in out.split("\n") if "|" in line]
        assert len(chart_lines) == 10
        for line in chart_lines:
            assert len(line.split("|", 1)[1]) == 40

    def test_log_scale(self):
        fig = FigureData("logdemo")
        fig.add("a", [1.0, 2.0, 3.0], [1.0, 10.0, 100.0])
        out = render_figure(fig, logy=True)
        assert "100" in out

    def test_log_scale_rejects_nonpositive(self):
        fig = FigureData("bad")
        fig.add("a", [1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            render_figure(fig, logy=True)

    def test_nan_points_skipped(self):
        fig = FigureData("nan")
        fig.add("a", [1.0, 2.0, 3.0], [1.0, math.nan, 3.0])
        out = render_figure(fig)
        assert "a" in out

    def test_empty_figure_rejected(self):
        with pytest.raises(ValueError):
            render_figure(FigureData("empty"))

    def test_constant_series_renders(self):
        fig = FigureData("flat")
        fig.add("a", [0.0, 1.0], [2.0, 2.0])
        out = render_figure(fig)
        assert "o" in out

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            render_figure(make_figure(), width=5, height=3)

    def test_too_many_series_rejected(self):
        fig = FigureData("many")
        for i in range(9):
            fig.add(f"s{i}", [0.0, 1.0], [float(i), float(i)])
        with pytest.raises(ValueError):
            render_figure(fig)


class TestCLIPlot:
    def test_plot_flag_prints_chart(self, tmp_path, capsys):
        from repro import cli

        code = cli.main([
            "fig6", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "10", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm3" in out
        assert "|" in out  # a chart was rendered
