"""Tests for quantization and its composition with sparsifiers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.quantization import (
    QuantizedSparsifier,
    UniformQuantizer,
    pair_cost_elements,
)
from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.topk import top_k_indices

RNG = np.random.default_rng(5)


class TestUniformQuantizer:
    def test_zero_vector(self):
        q = UniformQuantizer(num_levels=4)
        encoded = q.encode(np.zeros(5))
        assert encoded.scale == 0.0
        np.testing.assert_allclose(encoded.decode(), 0.0)

    def test_max_magnitude_exact(self):
        q = UniformQuantizer(num_levels=8)
        v = np.array([0.3, -1.0, 0.7])
        decoded = q.roundtrip(v)
        assert decoded[1] == pytest.approx(-1.0)

    def test_bounded_error(self):
        q = UniformQuantizer(num_levels=16, seed=0)
        v = RNG.standard_normal(100)
        decoded = q.roundtrip(v)
        scale = np.abs(v).max()
        assert np.all(np.abs(decoded - v) <= scale / 16 + 1e-12)

    def test_unbiased(self):
        q = UniformQuantizer(num_levels=2, seed=0)
        v = np.array([0.37])
        samples = np.array([q.roundtrip(v)[0] for _ in range(4000)])
        assert samples.mean() == pytest.approx(0.37, abs=0.02)

    def test_signs_preserved(self):
        q = UniformQuantizer(num_levels=4, seed=1)
        v = np.array([0.9, -0.9, 0.5, -0.5])
        decoded = q.roundtrip(v)
        assert np.all(np.sign(decoded[np.abs(decoded) > 0])
                      == np.sign(v[np.abs(decoded) > 0]))

    def test_bits_per_value(self):
        assert UniformQuantizer(num_levels=1).encode(np.ones(1)).bits_per_value == 2
        assert UniformQuantizer(num_levels=15).encode(np.ones(1)).bits_per_value == 5
        assert UniformQuantizer(num_levels=255).encode(np.ones(1)).bits_per_value == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(num_levels=0)

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_levels_in_range(self, levels, seed):
        rng = np.random.default_rng(seed)
        q = UniformQuantizer(num_levels=levels, seed=seed)
        v = rng.standard_normal(20)
        encoded = q.encode(v)
        assert np.all(np.abs(encoded.levels) <= levels)


class TestPairCost:
    def test_unquantized_pair_costs_two(self):
        assert pair_cost_elements(10, value_bits=32) == pytest.approx(20.0)

    def test_quantized_pair_cheaper(self):
        assert pair_cost_elements(10, value_bits=5) < pair_cost_elements(
            10, value_bits=32
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_cost_elements(-1, 8)
        with pytest.raises(ValueError):
            pair_cost_elements(1, 0)


class TestQuantizedSparsifier:
    def _upload(self, dense, k, cid=0):
        idx = top_k_indices(dense, k)
        return ClientUpload(cid, SparseVector.from_dense(dense, idx), 1)

    def test_preprocess_quantizes_values(self):
        sparsifier = QuantizedSparsifier(FABTopK(), UniformQuantizer(4, seed=0))
        dense = RNG.standard_normal(20)
        upload = self._upload(dense, 5)
        [processed] = sparsifier.preprocess_uploads([upload])
        assert processed.client_id == upload.client_id
        np.testing.assert_array_equal(
            processed.payload.indices, upload.payload.indices
        )
        # Values quantized to at most 4 distinct magnitudes + sign.
        magnitudes = np.unique(np.abs(processed.payload.values))
        assert magnitudes.size <= 5

    def test_selection_delegates(self):
        sparsifier = QuantizedSparsifier(FABTopK(), UniformQuantizer(8))
        uploads = [self._upload(RNG.standard_normal(30), 6, cid=i)
                   for i in range(3)]
        uploads = sparsifier.preprocess_uploads(uploads)
        result = sparsifier.server_select(uploads, k=6, dimension=30)
        assert result.indices.size == 6

    def test_name_and_residual_passthrough(self):
        inner = FABTopK()
        sparsifier = QuantizedSparsifier(inner, UniformQuantizer(8))
        assert "fab-top-k" in sparsifier.name
        assert sparsifier.discards_residual == inner.discards_residual

    def test_uplink_value_bits(self):
        sparsifier = QuantizedSparsifier(FABTopK(), UniformQuantizer(15))
        assert sparsifier.uplink_value_bits == 5

    def test_training_still_converges(self):
        ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                 feature_dim=10, separation=4.0, seed=0)
        fed = partition_iid(ds, num_clients=5, seed=0)
        model = make_logistic(10, 4, seed=0)
        sparsifier = QuantizedSparsifier(FABTopK(), UniformQuantizer(8, seed=0))
        trainer = FLTrainer(model, fed, sparsifier, learning_rate=0.1,
                            batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(60, k=10)
        assert trainer.history.final_loss < initial * 0.8

    def test_error_feedback_keeps_quantization_error(self):
        # After a round, the residual at transmitted indices must equal
        # original residual − transmitted (quantized) value, not zero.
        ds = make_gaussian_blobs(num_samples=100, num_classes=3,
                                 feature_dim=8, separation=4.0, seed=1)
        fed = partition_iid(ds, num_clients=2, seed=1)
        model = make_logistic(8, 3, seed=1)
        sparsifier = QuantizedSparsifier(FABTopK(), UniformQuantizer(2, seed=1))
        trainer = FLTrainer(model, fed, sparsifier, learning_rate=0.1,
                            batch_size=16, seed=1)
        trainer.step(k=5)
        # With 2 levels, quantization error is almost surely nonzero on
        # at least one transmitted coordinate of some client.
        residual_mass = sum(
            np.abs(c.residual).sum() for c in trainer.clients
        )
        assert residual_mass > 0
