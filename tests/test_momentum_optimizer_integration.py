"""Tests for DGC momentum correction and server-side optimizers in FL."""

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.client import Client
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.nn.optim import SGD, step_decay_lr
from repro.sparsify.fab_topk import FABTopK


@pytest.fixture
def federation():
    ds = make_gaussian_blobs(num_samples=300, num_classes=4, feature_dim=10,
                             separation=4.0, seed=0)
    return partition_iid(ds, num_clients=4, seed=0)


class TestMomentumCorrection:
    def test_velocity_accumulates(self, federation):
        model = make_logistic(10, 4, seed=0)
        client = Client(federation.clients[0], model.dimension,
                        batch_size=16, momentum_correction=0.9)
        client.local_step(model, k=5, sparsifier=FABTopK())
        v1 = client._velocity.copy()
        assert np.abs(v1).sum() > 0
        client.local_step(model, k=5, sparsifier=FABTopK())
        # Velocity should include the decayed previous velocity.
        assert not np.allclose(client._velocity, v1)

    def test_factor_masking_on_transmit(self, federation):
        model = make_logistic(10, 4, seed=0)
        client = Client(federation.clients[0], model.dimension,
                        batch_size=16, momentum_correction=0.9)
        upload = client.local_step(model, k=5, sparsifier=FABTopK())
        sent = upload.payload.indices
        client.reset_transmitted(sent)
        np.testing.assert_allclose(client._velocity[sent], 0.0)

    def test_reset_all_clears_velocity(self, federation):
        model = make_logistic(10, 4, seed=0)
        client = Client(federation.clients[0], model.dimension,
                        batch_size=16, momentum_correction=0.5)
        client.local_step(model, k=5, sparsifier=FABTopK())
        client.reset_all()
        np.testing.assert_allclose(client._velocity, 0.0)
        np.testing.assert_allclose(client.residual, 0.0)

    def test_validation(self, federation):
        with pytest.raises(ValueError):
            Client(federation.clients[0], 10, momentum_correction=1.0)
        with pytest.raises(ValueError):
            Client(federation.clients[0], 10, momentum_correction=-0.1)

    def test_training_with_momentum_converges(self, federation):
        model = make_logistic(10, 4, seed=0)
        trainer = FLTrainer(model, federation, FABTopK(),
                            learning_rate=0.05, batch_size=16,
                            momentum_correction=0.9, seed=0)
        initial = trainer.global_loss()
        trainer.run(60, k=10)
        assert trainer.history.final_loss < initial * 0.8

    def test_momentum_speeds_early_progress(self, federation):
        # On this smooth problem DGC momentum should make at least as
        # much progress as plain accumulation in the same rounds.
        def final_loss(mc):
            model = make_logistic(10, 4, seed=0)
            trainer = FLTrainer(model, federation, FABTopK(),
                                learning_rate=0.02, batch_size=16,
                                momentum_correction=mc, seed=0)
            trainer.run(60, k=10)
            return trainer.history.final_loss

        assert final_loss(0.9) < final_loss(0.0) * 1.05


class TestServerOptimizer:
    def test_plain_equivalence(self):
        # optimizer=SGD(lr) without momentum must match the built-in step.
        # Build two independent federations: ClientDataset sampling is
        # stateful, so sharing one would desynchronize the minibatches.
        def fresh_federation():
            ds = make_gaussian_blobs(num_samples=300, num_classes=4,
                                     feature_dim=10, separation=4.0, seed=0)
            return partition_iid(ds, num_clients=4, seed=0)

        model_a = make_logistic(10, 4, seed=0)
        trainer_a = FLTrainer(model_a, fresh_federation(), FABTopK(),
                              learning_rate=0.05, batch_size=16, seed=0)
        model_b = make_logistic(10, 4, seed=0)
        trainer_b = FLTrainer(model_b, fresh_federation(), FABTopK(),
                              learning_rate=123.0,  # ignored when optimizer set
                              optimizer=SGD(lr=0.05),
                              batch_size=16, seed=0)
        trainer_a.run(5, k=10)
        trainer_b.run(5, k=10)
        np.testing.assert_allclose(model_a.get_weights(), model_b.get_weights())

    def test_server_momentum_converges(self, federation):
        model = make_logistic(10, 4, seed=0)
        trainer = FLTrainer(model, federation, FABTopK(),
                            optimizer=SGD(lr=0.05, momentum=0.8),
                            batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(60, k=10)
        assert trainer.history.final_loss < initial * 0.8

    def test_lr_schedule_applies(self, federation):
        model = make_logistic(10, 4, seed=0)
        opt = SGD(lr=step_decay_lr(0.1, decay=0.5, every=2))
        trainer = FLTrainer(model, federation, FABTopK(), optimizer=opt,
                            batch_size=16, seed=0)
        trainer.run(4, k=10)
        assert opt.step_count == 4
        assert opt.current_lr() == pytest.approx(0.025)
