"""Smoke tests for the documented example entry points.

The examples are the README's front door; nothing else imports them, so
without this file they can silently rot.  ``quickstart.py`` actually
*runs* at tiny scale; every other example must at least byte-compile
(they are too slow to execute in tier 1, but syntax errors, renamed
imports, and removed APIs still surface at compile/import time for the
quickstart and at compile time for the rest).
"""

import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture()
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))


def test_quickstart_runs_at_tiny_scale(examples_on_path, capsys):
    import quickstart

    quickstart.main(num_writers=4, samples_per_writer=10, num_rounds=6,
                    eval_every=3)
    out = capsys.readouterr().out
    assert "4 clients" in out
    assert "model dimension D" in out
    assert "communication:" in out


@pytest.mark.parametrize(
    "example", sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
)
def test_example_compiles(example):
    py_compile.compile(str(EXAMPLES_DIR / example), doraise=True)


def test_examples_directory_is_covered():
    # If a new example appears, the glob above picks it up automatically;
    # this guards against the directory moving and the glob matching
    # nothing (which would green-wash the whole module).
    assert (EXAMPLES_DIR / "quickstart.py").exists()
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 6
