"""Unit tests for interval, Algorithm 2, Algorithm 3, and the estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.online.algorithm2 import SignOGD
from repro.online.algorithm3 import AdaptiveSignOGD
from repro.online.estimator import estimate_derivative, estimate_sign, estimate_tau
from repro.online.interval import SearchInterval, stochastic_round


class TestSearchInterval:
    def test_width_and_projection(self):
        K = SearchInterval(10.0, 100.0)
        assert K.width == 90.0
        assert K.project(5.0) == 10.0
        assert K.project(500.0) == 100.0
        assert K.project(50.0) == 50.0

    def test_contains(self):
        K = SearchInterval(2.0, 8.0)
        assert K.contains(2.0) and K.contains(8.0) and K.contains(5.0)
        assert not K.contains(1.9) and not K.contains(8.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchInterval(10.0, 5.0)
        with pytest.raises(ValueError):
            SearchInterval(0.0, 5.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_projection_idempotent(self, k):
        K = SearchInterval(3.0, 300.0)
        assert K.project(K.project(k)) == K.project(k)


class TestStochasticRound:
    def test_integer_unchanged(self):
        rng = np.random.default_rng(0)
        assert stochastic_round(7.0, rng) == 7

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            r = stochastic_round(4.3, rng)
            assert r in (4, 5)

    def test_unbiased(self):
        rng = np.random.default_rng(1)
        samples = [stochastic_round(4.3, rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(4.3, abs=0.02)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            stochastic_round(-0.5, np.random.default_rng(0))


class TestSignOGD:
    def test_step_size_schedule(self):
        alg = SignOGD(SearchInterval(1.0, 101.0))
        B = 100.0
        assert alg.step_size(1) == pytest.approx(B / math.sqrt(2))
        assert alg.step_size(8) == pytest.approx(B / 4.0)

    def test_moves_against_sign(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        alg.update(+1)
        assert alg.k < 50.0
        k_after = alg.k
        alg.update(-1)
        assert alg.k > k_after

    def test_zero_sign_no_move(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        alg.update(0)
        assert alg.k == 50.0
        assert alg.m == 2

    def test_none_keeps_k_but_advances_round(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        alg.update(None)
        assert alg.k == 50.0
        assert alg.m == 2

    def test_projection_at_boundaries(self):
        alg = SignOGD(SearchInterval(10.0, 20.0), k1=10.0)
        alg.update(+1)  # would go below kmin
        assert alg.k == 10.0
        alg2 = SignOGD(SearchInterval(10.0, 20.0), k1=20.0)
        alg2.update(-1)
        assert alg2.k == 20.0

    def test_default_k1_midpoint(self):
        alg = SignOGD(SearchInterval(10.0, 30.0))
        assert alg.k == 20.0

    def test_k1_validation(self):
        with pytest.raises(ValueError):
            SignOGD(SearchInterval(10.0, 30.0), k1=5.0)

    def test_invalid_sign_rejected(self):
        alg = SignOGD(SearchInterval(1.0, 10.0))
        with pytest.raises(ValueError):
            alg.update(2)

    def test_history_tracks_decisions(self):
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=50.0)
        for s in [1, -1, 1, None]:
            alg.update(s)
        assert len(alg.k_history) == 5
        assert alg.k_history[0] == 50.0

    def test_converges_toward_fixed_optimum(self):
        # Exact signs pointing at k* = 30 drive k close to 30.
        alg = SignOGD(SearchInterval(1.0, 101.0), k1=90.0)
        for _ in range(500):
            s = 1 if alg.k > 30.0 else (-1 if alg.k < 30.0 else 0)
            alg.update(s)
        assert abs(alg.k - 30.0) < 5.0


class TestAdaptiveSignOGD:
    def test_first_step_matches_algorithm2(self):
        K = SearchInterval(1.0, 101.0)
        a2 = SignOGD(K, k1=60.0)
        a3 = AdaptiveSignOGD(K, k1=60.0, update_window=1000)
        a2.update(1)
        a3.update(1)
        assert a3.k == pytest.approx(a2.k)

    def test_restart_shrinks_interval(self):
        K = SearchInterval(1.0, 1001.0)
        alg = AdaptiveSignOGD(K, k1=500.0, alpha=1.1, update_window=5)
        # Feed alternating signs so k oscillates in a narrow band around
        # its current position: window min/max stay close -> restart fires.
        for m in range(200):
            s = 1 if alg.k > 100.0 else -1
            alg.update(s)
        assert alg.restart_rounds, "expected at least one interval restart"
        assert alg.current_interval.width < K.width

    def test_restart_requires_long_enough_instance(self):
        K = SearchInterval(1.0, 101.0)
        alg = AdaptiveSignOGD(K, k1=50.0, alpha=1.0, update_window=2)
        # After a first restart, a second restart needs M'' >= M'.
        for _ in range(50):
            alg.update(1 if alg.k > 20 else -1)
        if len(alg.restart_rounds) >= 2:
            gaps = np.diff([0] + alg.restart_rounds)
            assert all(gaps[i + 1] >= gaps[i] for i in range(len(gaps) - 1))

    def test_interval_never_exceeds_global(self):
        K = SearchInterval(5.0, 105.0)
        alg = AdaptiveSignOGD(K, alpha=2.0, update_window=3)
        rng = np.random.default_rng(0)
        for _ in range(100):
            alg.update(int(rng.choice([-1, 1])))
        assert alg.current_interval.kmin >= K.kmin
        assert alg.current_interval.kmax <= K.kmax

    def test_none_skips_window_tracking(self):
        K = SearchInterval(1.0, 101.0)
        alg = AdaptiveSignOGD(K, k1=50.0, update_window=2)
        alg.update(None)
        alg.update(None)
        assert not alg.restart_rounds
        assert alg._window_count == 0

    def test_k_stays_in_interval(self):
        K = SearchInterval(2.0, 52.0)
        alg = AdaptiveSignOGD(K, update_window=4)
        rng = np.random.default_rng(3)
        for _ in range(300):
            alg.update(int(rng.choice([-1, 0, 1])))
            assert K.kmin <= alg.k <= K.kmax

    def test_validation(self):
        K = SearchInterval(1.0, 10.0)
        with pytest.raises(ValueError):
            AdaptiveSignOGD(K, alpha=0.5)
        with pytest.raises(ValueError):
            AdaptiveSignOGD(K, update_window=0)
        with pytest.raises(ValueError):
            AdaptiveSignOGD(K, k1=100.0)

    def test_step_size_resets_after_restart(self):
        K = SearchInterval(1.0, 1001.0)
        alg = AdaptiveSignOGD(K, k1=500.0, alpha=1.05, update_window=4)
        for _ in range(200):
            alg.update(1 if alg.k > 50.0 else -1)
            if alg.restart_rounds:
                break
        if alg.restart_rounds:
            # Right after a restart, δ uses the new small B at instance
            # round 1, so it should be below the pre-restart step.
            assert alg.step_size() <= alg._B / math.sqrt(2.0) + 1e-9


class TestEstimator:
    def test_tau_scaling(self):
        # Actual round decreased loss by 0.2, probe by 0.1: the probe
        # round covers half the loss interval, so reaching the same loss
        # takes twice the probe round time.
        tau = estimate_tau(1.0, 0.8, 0.9, probe_round_time=3.0)
        assert tau == pytest.approx(6.0)

    def test_tau_unavailable_when_no_decrease(self):
        assert estimate_tau(1.0, 1.1, 0.9, 3.0) is None
        assert estimate_tau(1.0, 0.9, 1.2, 3.0) is None
        assert estimate_tau(1.0, 1.0, 1.0, 3.0) is None

    def test_derivative_sign_positive_when_k_wasteful(self):
        # Probe (smaller k') reaches the same loss faster than the actual
        # round: increasing k is wasteful -> derivative positive.
        s = estimate_sign(
            loss_prev=1.0, loss_now=0.8, loss_probe=0.8,
            round_time=10.0, probe_round_time=5.0, k=100.0, k_probe=80.0,
        )
        assert s == 1

    def test_derivative_sign_negative_when_k_helpful(self):
        # Probe made almost no progress: mapping its round to the actual
        # loss interval costs much more time -> larger k is better.
        s = estimate_sign(
            loss_prev=1.0, loss_now=0.8, loss_probe=0.99,
            round_time=10.0, probe_round_time=9.0, k=100.0, k_probe=80.0,
        )
        assert s == -1

    def test_sign_zero_on_exact_balance(self):
        s = estimate_sign(
            loss_prev=1.0, loss_now=0.8, loss_probe=0.9,
            round_time=10.0, probe_round_time=5.0, k=100.0, k_probe=80.0,
        )
        assert s == 0

    def test_unavailable_propagates(self):
        assert estimate_sign(1.0, 1.2, 0.9, 10.0, 5.0, 100.0, 80.0) is None
        assert estimate_derivative(1.0, 1.2, 0.9, 10.0, 5.0, 100.0, 80.0) is None

    def test_equal_k_rejected(self):
        with pytest.raises(ValueError):
            estimate_sign(1.0, 0.8, 0.9, 10.0, 5.0, 100.0, 100.0)

    def test_derivative_value(self):
        d = estimate_derivative(
            loss_prev=1.0, loss_now=0.8, loss_probe=0.9,
            round_time=12.0, probe_round_time=5.0, k=100.0, k_probe=80.0,
        )
        # tau_probe = 5 * 0.2/0.1 = 10; (12 - 10)/(100 - 80) = 0.1
        assert d == pytest.approx(0.1)
