"""Tests for diagnostics, experiment serialization, and the CLI."""

import json

import numpy as np
import pytest

from repro.data.partition import partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.experiments.io import (
    export_figure_csv,
    figure_from_dict,
    figure_to_dict,
    load_figure,
    load_history,
    save_figure,
    save_history,
)
from repro.experiments.runner import FigureData
from repro.fl.client import Client
from repro.fl.diagnostics import (
    fairness_index,
    gradient_concentration,
    history_fairness,
    residual_stats,
)
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_logistic
from repro.sparsify.fab_topk import FABTopK
from repro import cli


class TestResidualStats:
    def _clients(self):
        ds = make_gaussian_blobs(num_samples=100, num_classes=3,
                                 feature_dim=8, seed=0)
        fed = partition_iid(ds, num_clients=3, seed=0)
        return [Client(shard, dimension=27) for shard in fed.clients]

    def test_fresh_clients_zero(self):
        stats = residual_stats(self._clients())
        assert stats.total_l1 == 0.0
        assert stats.nonzero_fraction == 0.0
        assert stats.mean_client_l1 == 0.0

    def test_after_training_nonzero(self):
        ds = make_gaussian_blobs(num_samples=200, num_classes=3,
                                 feature_dim=8, seed=0)
        fed = partition_iid(ds, num_clients=3, seed=0)
        model = make_logistic(8, 3, seed=0)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.1, seed=0)
        trainer.run(5, k=3)
        stats = residual_stats(trainer.clients)
        assert stats.total_l1 > 0
        assert 0 < stats.nonzero_fraction <= 1
        assert stats.max_abs > 0
        assert len(stats.per_client_l1) == 3

    def test_empty_is_zeroed(self):
        # A population-scale run that never touched a client yields an
        # empty ever-touched list; diagnostics report zeros, not errors.
        stats = residual_stats([])
        assert stats.total_l1 == 0.0
        assert stats.max_abs == 0.0
        assert stats.per_client_l1 == {}
        assert stats.nonzero_fraction == 0.0
        assert stats.mean_client_l1 == 0.0

    def test_accepts_trainer(self):
        ds = make_gaussian_blobs(num_samples=200, num_classes=3,
                                 feature_dim=8, seed=0)
        fed = partition_iid(ds, num_clients=3, seed=0)
        model = make_logistic(8, 3, seed=0)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.1, seed=0)
        trainer.run(5, k=3)
        via_trainer = residual_stats(trainer)
        via_list = residual_stats(trainer.clients)
        assert via_trainer == via_list

    def test_hibernating_clients_not_woken(self):
        ds = make_gaussian_blobs(num_samples=200, num_classes=3,
                                 feature_dim=8, seed=0)
        fed = partition_iid(ds, num_clients=3, seed=0)
        model = make_logistic(8, 3, seed=0)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.1, seed=0)
        trainer.run(5, k=3)
        awake = residual_stats(trainer.clients)
        for client in trainer.clients:
            client.hibernate()
        spilled = residual_stats(trainer.clients)
        assert spilled == awake
        assert all(c.hibernating for c in trainer.clients)


class TestGradientConcentration:
    def test_flat_gradient(self):
        g = np.ones(1000)
        conc = gradient_concentration(g, fractions=(0.1,))
        assert conc[0.1] == pytest.approx(0.1, rel=0.01)

    def test_concentrated_gradient(self):
        g = np.zeros(1000)
        g[:10] = 100.0
        g[10:] = 0.001
        conc = gradient_concentration(g, fractions=(0.01,))
        assert conc[0.01] > 0.99

    def test_zero_gradient(self):
        conc = gradient_concentration(np.zeros(10), fractions=(0.5,))
        assert conc[0.5] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gradient_concentration(np.ones(10), fractions=(0.0,))


class TestFairnessIndex:
    def test_perfectly_even(self):
        assert fairness_index({0: 5, 1: 5, 2: 5}) == pytest.approx(1.0)

    def test_single_dominant(self):
        idx = fairness_index({0: 100, 1: 0, 2: 0, 3: 0})
        assert idx == pytest.approx(0.25)

    def test_history_fairness(self):
        h = TrainingHistory()
        h.append(RoundRecord(1, 1.0, 1.0, 1.0, 1.0,
                             contributions={0: 3, 1: 3}))
        assert history_fairness(h) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fairness_index({})


class TestFigureIO:
    def _figure(self):
        fig = FigureData("test figure", notes=["a note"])
        fig.add("curve-a", [1.0, 2.0], [3.0, 4.0])
        fig.add("curve-b", [1.0], [9.0])
        return fig

    def test_roundtrip_dict(self):
        fig = self._figure()
        restored = figure_from_dict(figure_to_dict(fig))
        assert restored.title == fig.title
        assert restored.notes == fig.notes
        assert restored.labels() == fig.labels()
        np.testing.assert_allclose(restored.get("curve-a").y, [3.0, 4.0])

    def test_roundtrip_file(self, tmp_path):
        fig = self._figure()
        path = tmp_path / "fig.json"
        save_figure(fig, path)
        restored = load_figure(path)
        assert restored.labels() == fig.labels()

    def test_csv_export(self, tmp_path):
        path = tmp_path / "fig.csv"
        export_figure_csv(self._figure(), path)
        content = path.read_text()
        assert "curve-a,1,3" in content

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "kind": "figure"}))
        with pytest.raises(ValueError):
            load_figure(path)

    def test_kind_checked(self):
        with pytest.raises(ValueError):
            figure_from_dict({"schema": 1, "kind": "history", "records": []})


class TestHistoryIO:
    def test_roundtrip(self, tmp_path):
        h = TrainingHistory()
        h.append(RoundRecord(1, 5.0, 1.5, 1.5, 2.0, accuracy=0.5,
                             uplink_elements=10, downlink_elements=8,
                             contributions={0: 4, 1: 6}))
        h.append(RoundRecord(2, 5.0, 1.5, 3.0, 1.5))
        path = tmp_path / "hist.json"
        save_history(h, path)
        restored = load_history(path)
        assert len(restored) == 2
        assert restored.records[0].accuracy == 0.5
        assert restored.records[0].contributions == {0: 4, 1: 6}
        assert restored.records[1].accuracy is None
        assert restored.final_loss == 1.5


class TestCLI:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for figure in cli.FIGURES:
            assert figure in out

    def test_fig6_smoke_writes_artifacts(self, tmp_path, capsys):
        code = cli.main([
            "fig6", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "10",
        ])
        assert code == 0
        assert (tmp_path / "fig6_loss_vs_time.json").exists()
        assert (tmp_path / "fig6_k_traces.csv").exists()
        restored = load_figure(tmp_path / "fig6_k_traces.json")
        assert set(restored.labels()) == {"algorithm2", "algorithm3"}

    def test_fig1_smoke(self, tmp_path):
        code = cli.main([
            "fig1", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "10",
        ])
        assert code == 0
        assert (tmp_path / "fig1_post_switch_loss.json").exists()

    def test_fig4_smoke_writes_histories(self, tmp_path):
        code = cli.main([
            "fig4", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "15",
        ])
        assert code == 0
        assert (tmp_path / "fig4_loss_vs_time.csv").exists()
        assert (tmp_path / "fig4_contribution_cdf.json").exists()
        restored = load_history(tmp_path / "fig4_history_fab-top-k.json")
        assert len(restored) > 0

    def test_fig5_smoke(self, tmp_path):
        code = cli.main([
            "fig5", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "10",
        ])
        assert code == 0
        traces = load_figure(tmp_path / "fig5_k_traces.json")
        assert "proposed" in traces.labels()

    def test_fig7_smoke_writes_replays(self, tmp_path):
        code = cli.main([
            "fig7", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "8",
        ])
        assert code == 0
        assert (tmp_path / "fig7_k_traces.json").exists()
        replays = list(tmp_path.glob("fig7_replay_beta_*.json"))
        assert len(replays) == 4

    def test_comm_time_override(self, tmp_path):
        code = cli.main([
            "fig6", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "8", "--comm-time", "3.5",
        ])
        assert code == 0

    def test_overrides_applied(self):
        config = cli.scaled_config("smoke", "fig5")
        assert config.with_overrides(num_rounds=7).num_rounds == 7

    def test_fig8_uses_cifar(self):
        config = cli.scaled_config("bench", "fig8")
        assert config.dataset == "cifar"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            cli.scaled_config("galactic", "fig4")

    def test_sweep_command_uses_cache(self, tmp_path, caplog):
        import logging

        argv = [
            "sweep", "--scale", "smoke", "--figures", "fig6",
            "--rounds", "4", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "artifacts"),
        ]
        # Sweep progress goes through the package logger, not stdout.
        with caplog.at_level(logging.INFO, logger="repro"):
            assert cli.main(argv) == 0
        assert "1 to compute" in caplog.text
        run_dir = tmp_path / "artifacts" / "fig6_smoke_seed0_serial"
        restored = load_figure(run_dir / "fig6_k_traces.json")
        assert set(restored.labels()) == {"algorithm2", "algorithm3"}
        caplog.clear()
        # The re-run must be served entirely from the results store.
        with caplog.at_level(logging.INFO, logger="repro"):
            assert cli.main(argv) == 0
        assert "1 cached, 0 to compute" in caplog.text

    def test_jobs_flag_implies_sharded_backend(self):
        args = cli.build_parser().parse_args(["fig4", "--jobs", "4"])
        assert args.jobs == 4 and args.backend is None
