"""Deployment-scenario subsystem tests.

Three load-bearing guarantees (the PR's acceptance criteria):

(a) **Backend bit-identity under churn** — the same seeded scenario
    (Markov availability, straggler profiles, deadline drops,
    over-selection) produces *identical* histories, weights and
    residuals on the serial, vectorized and sharded backends.
(b) **Exact recovery of dropped uploads** — a deadline-dropped client's
    gradient survives in its residual and is transmitted, bit for bit,
    the next time the client makes a deadline.
(c) **Degenerate scenario = plain trainer** — always-available, no
    deadline, full participation reproduces the scenario-free trainer's
    history exactly.

Plus unit coverage of the availability processes, the deadline policy,
the scenario config round-trip, the sampler, partial-aggregation
reweighting, and the CLI entry point.
"""

import json

import numpy as np
import pytest

from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.engine import ChainedHooks, RoundHooks
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.interval import SearchInterval
from repro.online.policy import SignPolicy
from repro.parallel.sharded import ShardedBackend
from repro.scenarios import (
    AlwaysAvailable,
    DeadlineRoundPolicy,
    DeploymentScenario,
    DiurnalAvailability,
    MarkovAvailability,
    ScenarioConfig,
    ScenarioSampler,
    TraceAvailability,
)
from repro.simulation.heterogeneous import ClientProfile, HeterogeneousTimingModel
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.periodic import PeriodicK


def history_rows(history):
    return [
        (
            r.round_index, r.k, r.round_time, r.cumulative_time,
            None if np.isnan(r.loss) else r.loss, r.accuracy,
            r.uplink_elements, r.downlink_elements,
            tuple(sorted(r.contributions.items())),
        )
        for r in history
    ]


# ----------------------------------------------------------------------
# Availability processes
# ----------------------------------------------------------------------
class TestAvailability:
    IDS = [0, 1, 2, 3, 4]

    def test_always_available(self):
        av = AlwaysAvailable(self.IDS)
        assert av.available_ids(1) == self.IDS
        assert av.available_ids(1000) == self.IDS

    def test_markov_is_deterministic_and_cached(self):
        a = MarkovAvailability(self.IDS, p_drop=0.3, p_recover=0.4, seed=9)
        b = MarkovAvailability(self.IDS, p_drop=0.3, p_recover=0.4, seed=9)
        # Query out of order on one, in order on the other: same chain.
        seq_a = [a.available_ids(m) for m in (5, 1, 3, 5, 2, 4)]
        seq_b = [b.available_ids(m) for m in (5, 1, 3, 5, 2, 4)]
        assert seq_a == seq_b
        assert a.available_ids(5) == seq_a[0]  # cached, not re-drawn

    def test_markov_edge_probabilities(self):
        never_drop = MarkovAvailability(self.IDS, p_drop=0.0, p_recover=0.0)
        for m in range(1, 10):
            assert never_drop.available_ids(m) == self.IDS
        flip = MarkovAvailability(self.IDS, p_drop=1.0, p_recover=1.0)
        assert flip.available_ids(1) == []      # all dropped after round 0
        assert flip.available_ids(2) == self.IDS  # all recovered

    def test_markov_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            MarkovAvailability(self.IDS, p_drop=1.5)

    def test_diurnal_full_duty_is_always_on(self):
        av = DiurnalAvailability(self.IDS, period=6, duty=1.0, seed=0)
        for m in (1, 3, 6, 7, 100):
            assert av.available_ids(m) == self.IDS

    def test_diurnal_cycles_deterministically(self):
        av = DiurnalAvailability(self.IDS, period=4, duty=0.5, seed=2)
        first_day = [av.available_ids(m) for m in range(1, 5)]
        second_day = [av.available_ids(m) for m in range(5, 9)]
        assert first_day == second_day
        # duty 0.5 of period 4 => every client online exactly 2 rounds/day
        per_client = sum(len(ids) for ids in first_day)
        assert per_client == 2 * len(self.IDS)

    def test_trace_replay_cycle_and_hold(self):
        rounds = [[0, 1], [2], [3, 4]]
        cyc = TraceAvailability(self.IDS, rounds, cycle=True)
        assert [cyc.available_ids(m) for m in (1, 2, 3, 4)] == [
            [0, 1], [2], [3, 4], [0, 1]
        ]
        hold = TraceAvailability(self.IDS, rounds, cycle=False)
        assert hold.available_ids(9) == [3, 4]

    def test_trace_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="unknown client ids"):
            TraceAvailability(self.IDS, [[0, 99]])

    def test_trace_from_json(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"rounds": [[0], [1, 2]], "cycle": False}))
        av = TraceAvailability.from_json(path, self.IDS)
        assert av.available_ids(1) == [0]
        assert av.available_ids(5) == [1, 2]
        assert not av.cycle


# ----------------------------------------------------------------------
# Deadline policy
# ----------------------------------------------------------------------
def _uploads(nnz_by_client):
    dimension = 100
    uploads = []
    for cid, nnz in nnz_by_client.items():
        indices = np.arange(nnz, dtype=np.int64)
        uploads.append(ClientUpload(
            client_id=cid,
            payload=SparseVector.from_sorted(
                indices, np.ones(nnz), dimension
            ),
            sample_count=10,
        ))
    return uploads


class TestDeadlinePolicy:
    TIMING = TimingModel(dimension=100, comm_time=10.0)

    def test_finish_times_scale_with_profiles(self):
        uploads = _uploads({0: 10, 1: 10})
        policy = DeadlineRoundPolicy(deadline=5.0)
        base = policy.finish_times(uploads, self.TIMING)
        np.testing.assert_allclose(base, base[0])
        profiles = {1: ClientProfile(1, compute_factor=3.0, comm_factor=2.0)}
        slowed = policy.finish_times(uploads, self.TIMING, profiles)
        assert slowed[0] == base[0]
        uplink = self.TIMING.sparse_round(10, 0).uplink
        assert slowed[1] == pytest.approx(3.0 * 1.0 + 2.0 * uplink)

    def test_all_in_time_closes_at_last_finish(self):
        uploads = _uploads({0: 10, 1: 20})
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING
        )
        assert verdict.accepted == (0, 1)
        assert verdict.dropped_ids == ()
        assert verdict.close_time == pytest.approx(max(verdict.finish_times))
        assert verdict.close_time < 50.0

    def test_late_upload_dropped_and_deadline_charged(self):
        uploads = _uploads({0: 10, 1: 10})
        profiles = {1: ClientProfile(1, compute_factor=40.0)}
        verdict = DeadlineRoundPolicy(deadline=5.0).admit(
            1, uploads, self.TIMING, profiles
        )
        assert verdict.accepted == (0,)
        assert verdict.dropped_ids == (1,)
        # The server waited for the deadline, not the straggler tail.
        assert verdict.close_time == 5.0

    def test_over_selection_closes_on_mth_finisher(self):
        uploads = _uploads({0: 10, 1: 20, 2: 30})
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING, target_uploads=2
        )
        # Fastest two (smallest payloads) accepted, slowest dropped even
        # though it was within the deadline; close at the 2nd finisher.
        assert verdict.accepted == (0, 1)
        assert verdict.dropped_ids == (2,)
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])

    def test_target_reached_exactly_still_closes_early(self):
        # Boundary case: exactly m uploads beat the deadline.  The server
        # has its m-th upload the moment it lands and closes there — it
        # must not sit out the rest of the deadline window.
        uploads = _uploads({0: 10, 1: 20, 2: 10, 3: 10})
        profiles = {3: ClientProfile(3, compute_factor=100.0)}
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING, profiles, target_uploads=3
        )
        assert verdict.accepted == (0, 1, 2)
        assert verdict.dropped_ids == (3,)
        # Client 1's larger payload makes it the 3rd (last) finisher.
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])
        assert verdict.close_time < 50.0

    def test_over_selection_applies_without_deadline(self):
        uploads = _uploads({0: 10, 1: 20, 2: 30})
        policy = DeadlineRoundPolicy(deadline=None, over_selection=0.5)
        assert policy.applies(target_uploads=2)
        assert not policy.applies(target_uploads=None)
        verdict = policy.admit(1, uploads, self.TIMING, target_uploads=2)
        assert verdict.accepted == (0, 1)
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])

    def test_min_uploads_floor_extends_the_round(self):
        uploads = _uploads({0: 10, 1: 10})
        profiles = {
            0: ClientProfile(0, compute_factor=30.0),
            1: ClientProfile(1, compute_factor=40.0),
        }
        verdict = DeadlineRoundPolicy(deadline=2.0, min_uploads=1).admit(
            1, uploads, self.TIMING, profiles
        )
        assert verdict.accepted == (0,)
        assert verdict.close_time == pytest.approx(verdict.finish_times[0])
        assert verdict.close_time > 2.0  # round extended past the deadline

    def test_deadline_schedule_cycles(self):
        policy = DeadlineRoundPolicy(deadline=(2.0, 2.0, 9.0))
        assert [policy.deadline_for(m) for m in range(1, 7)] == [
            2.0, 2.0, 9.0, 2.0, 2.0, 9.0
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="min_uploads"):
            DeadlineRoundPolicy(5.0, min_uploads=0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineRoundPolicy(-1.0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineRoundPolicy((2.0, 0.0))
        with pytest.raises(ValueError, match="over_selection"):
            DeadlineRoundPolicy(5.0, over_selection=-0.1)
        assert DeadlineRoundPolicy(None).active is False
        assert DeadlineRoundPolicy(5.0).active is True


# ----------------------------------------------------------------------
# ScenarioConfig
# ----------------------------------------------------------------------
class TestScenarioConfig:
    def test_round_trips_through_dict(self):
        config = ScenarioConfig(
            availability="trace",
            trace=((0, 1), (2,)),
            deadline=(2.5, 9.0),
            participants=3,
            over_selection=0.5,
            reweight="cohort",
            slow_fraction=0.25,
            seed=7,
        )
        data = config.to_dict()
        json.dumps(data)  # must be JSON-ready (sweep cache keys)
        assert ScenarioConfig.from_dict(data) == config

    def test_validation(self):
        with pytest.raises(ValueError, match="availability"):
            ScenarioConfig(availability="quantum")
        with pytest.raises(ValueError, match="trace"):
            ScenarioConfig(availability="trace")
        with pytest.raises(ValueError, match="participants"):
            ScenarioConfig(over_selection=0.5)
        with pytest.raises(ValueError, match="reweight"):
            ScenarioConfig(reweight="magic")
        with pytest.raises(ValueError, match="duty"):
            ScenarioConfig(duty=0.0)

    def test_build_profiles_is_seeded_and_sized(self):
        config = ScenarioConfig(slow_fraction=0.5, slow_factor=3.0, seed=4)
        ids = list(range(10))
        first = config.build_profiles(ids)
        second = config.build_profiles(ids)
        assert first == second
        slow = [p for p in first if p.compute_factor == 3.0]
        assert len(slow) == 5
        assert all(p.comm_factor == 3.0 for p in slow)

    def test_experiment_config_carries_scenario(self):
        from repro.experiments.config import ExperimentConfig

        scenario = ScenarioConfig.default_churn().to_dict()
        config = ExperimentConfig.smoke().with_overrides(scenario=scenario)
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="scenario"):
            ExperimentConfig.smoke().with_overrides(scenario="churn")


# ----------------------------------------------------------------------
# ScenarioSampler
# ----------------------------------------------------------------------
class TestScenarioSampler:
    def test_full_participation_consumes_no_rng(self):
        av = AlwaysAvailable([3, 1, 2])
        sampler = ScenarioSampler(av, count=0, seed=0)
        state_before = sampler._rng.bit_generator.state
        assert sampler.sample() == [1, 2, 3]
        assert sampler._rng.bit_generator.state == state_before

    def test_over_selection_cohort_size(self):
        av = AlwaysAvailable(list(range(10)))
        sampler = ScenarioSampler(av, count=4, over_selection=0.5, seed=1)
        assert sampler.cohort_size == 6
        cohort = sampler.sample()
        assert len(cohort) == 6
        assert cohort == sorted(cohort)

    def test_empty_round_falls_back_to_population(self):
        av = MarkovAvailability([0, 1], p_drop=1.0, p_recover=1.0)
        sampler = ScenarioSampler(av, count=0, seed=0)
        assert sampler.sample() == [0, 1]  # round 1: everyone offline

    def test_rejects_oversized_count(self):
        with pytest.raises(ValueError, match="count"):
            ScenarioSampler(AlwaysAvailable([0, 1]), count=3)


# ----------------------------------------------------------------------
# End-to-end scenario runs
# ----------------------------------------------------------------------
def _federation(seed=5, num_writers=8):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=16,
                           num_classes=8, image_size=8, classes_per_writer=4,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


CHURN = ScenarioConfig(
    availability="markov",
    p_drop=0.2,
    p_recover=0.6,
    participants=5,
    over_selection=0.4,
    deadline=(2.5, 2.5, 9.0),
    slow_fraction=0.25,
    slow_factor=4.0,
    seed=5,
)


def _scenario_trainer(backend, scenario_config=CHURN, sparsifier=None,
                      seed=5):
    fed = _federation(seed=seed)
    model = make_mlp(64, 8, hidden=(10,), seed=seed)
    ids = [c.client_id for c in fed.clients]
    profiles = scenario_config.build_profiles(ids)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    scenario = DeploymentScenario.build(scenario_config, ids, timing, profiles)
    trainer = FLTrainer(
        model, fed, sparsifier if sparsifier is not None else FABTopK(),
        timing=timing, learning_rate=0.05, batch_size=8, eval_every=3,
        seed=seed, backend=backend, scenario=scenario,
    )
    return trainer, scenario


class TestScenarioBackendEquivalence:
    """Acceptance (a): same seed => bit-identical histories across backends."""

    @pytest.mark.parametrize("backend_name", ["vectorized", "sharded"])
    def test_churn_histories_identical(self, backend_name):
        backend = (
            ShardedBackend(jobs=2) if backend_name == "sharded"
            else backend_name
        )
        serial, s_scn = _scenario_trainer("serial")
        fast, f_scn = _scenario_trainer(backend)
        hs = serial.run(9, k=12)
        hf = fast.run(9, k=12)
        assert history_rows(hs) == history_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)
        # The deadline gate fired identically too.
        assert [r.dropped_ids for r in s_scn.stats.rounds] == [
            r.dropped_ids for r in f_scn.stats.rounds
        ]
        assert s_scn.stats.total_dropped > 0  # the scenario actually bites
        fast.close()

    def test_adaptive_trainer_composes_with_scenario(self):
        def build(backend):
            fed = _federation()
            model = make_mlp(64, 8, hidden=(10,), seed=5)
            ids = [c.client_id for c in fed.clients]
            profiles = CHURN.build_profiles(ids)
            timing = HeterogeneousTimingModel(
                model.dimension, comm_time=10.0, profiles=profiles
            )
            scenario = DeploymentScenario.build(CHURN, ids, timing, profiles)
            policy = SignPolicy(
                SignOGD(SearchInterval(2.0, float(model.dimension)))
            )
            return AdaptiveKTrainer(
                model, fed, FABTopK(), policy, timing, learning_rate=0.05,
                batch_size=8, eval_every=2, seed=5, backend=backend,
                scenario=scenario,
            )

        fast = build("vectorized")
        assert history_rows(build("serial").run(6)) == history_rows(
            fast.run(6)
        )
        fast.close()


class TestDroppedUploadRecovery:
    """Acceptance (b): a deadline-dropped gradient is recovered exactly."""

    def _build(self):
        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(6,), seed=11)
        ids = [c.client_id for c in fed.clients]
        # Client ids[1] is a hard straggler; round 1's deadline drops it,
        # round 2 is an amnesty round that admits everyone.
        profiles = [
            ClientProfile(ids[0]),
            ClientProfile(ids[1], compute_factor=50.0, comm_factor=50.0),
        ]
        scenario_config = ScenarioConfig(
            availability="always", deadline=(3.0, 1000.0), seed=11,
        )
        timing = TimingModel(model.dimension, comm_time=10.0)
        scenario = DeploymentScenario.build(
            scenario_config, ids, timing, profiles
        )
        trainer = FLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=1, seed=11, scenario=scenario,
        )
        return trainer, scenario

    def test_dropped_gradient_rides_the_residual_to_the_server(self):
        trainer, scenario = self._build()
        straggler = trainer.clients[1]
        dimension = trainer.model.dimension
        w0 = trainer.model.get_weights()

        # Independent replica of the straggler's data stream: gradients
        # g1 (at w0) and later g2 (at w1) computed outside the trainer.
        twin = _federation(seed=11, num_writers=2).clients[1]
        ref_model = make_mlp(64, 8, hidden=(6,), seed=11)

        class Recorder(RoundHooks):
            def __init__(self):
                self.uploads_by_round = {}

            def after_local_steps(self, ctx):
                self.uploads_by_round[ctx.round_index] = list(ctx.uploads)

        recorder = Recorder()
        # ---- round 1: tight deadline, straggler's upload dropped ----
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[0].dropped_ids == (straggler.client_id,)
        assert [up.client_id for up in recorder.uploads_by_round[1]] == [
            trainer.clients[0].client_id
        ]
        x1, y1 = twin.minibatch(8)
        ref_model.set_weights(w0)
        g1, _ = ref_model.gradient(x1, y1)
        # Nothing was reset: the whole gradient is still in the residual.
        np.testing.assert_array_equal(straggler.residual, g1)

        # ---- round 2: amnesty deadline, the straggler makes it ----
        w1 = trainer.model.get_weights()
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[1].dropped_ids == ()
        x2, y2 = twin.minibatch(8)
        ref_model.set_weights(w1)
        g2, _ = ref_model.gradient(x2, y2)
        upload = {
            up.client_id: up for up in recorder.uploads_by_round[2]
        }[straggler.client_id]
        # The upload carries round 1's dropped gradient plus round 2's —
        # exact recovery through residual accumulation, not approximate.
        np.testing.assert_array_equal(upload.payload.to_dense(), g1 + g2)
        # k = D transmitted everything, so the residual is fully drained.
        np.testing.assert_array_equal(
            straggler.residual, np.zeros(dimension)
        )

    def test_discarding_sparsifier_still_discards_for_dropped_clients(self):
        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(6,), seed=11)
        ids = [c.client_id for c in fed.clients]
        profiles = [
            ClientProfile(ids[0]),
            ClientProfile(ids[1], compute_factor=50.0),
        ]
        scenario = DeploymentScenario.build(
            ScenarioConfig(availability="always", deadline=3.0, seed=11),
            ids, TimingModel(model.dimension, comm_time=10.0), profiles,
        )
        trainer = FLTrainer(
            model, fed, PeriodicK(model.dimension, seed=11),
            timing=TimingModel(model.dimension, comm_time=10.0),
            learning_rate=0.05, batch_size=8, eval_every=1, seed=11,
            scenario=scenario,
        )
        trainer.step(10)
        assert scenario.stats.rounds[0].dropped_ids == (ids[1],)
        # Non-accumulating scheme: the dropped client's residual is
        # discarded too (scheme semantics, not scenario semantics).
        np.testing.assert_array_equal(
            trainer.clients[1].residual, np.zeros(model.dimension)
        )


class TestDegenerateScenario:
    """Acceptance (c): no churn + no deadline == the plain trainer."""

    def test_reproduces_plain_trainer_exactly(self):
        fed = _federation()
        model = make_mlp(64, 8, hidden=(10,), seed=5)
        timing = TimingModel(model.dimension, comm_time=10.0)
        plain = FLTrainer(model, fed, FABTopK(), timing=timing,
                          learning_rate=0.05, batch_size=8, eval_every=3,
                          seed=5)
        idle = ScenarioConfig(
            availability="always", deadline=None, participants=0,
            slow_fraction=0.0, seed=5,
        )
        wrapped, scenario = _scenario_trainer("serial", scenario_config=idle)
        # The idle scenario run must not even perturb timing: rebuild it
        # on the same plain TimingModel the reference uses.
        assert isinstance(wrapped.timing, TimingModel)
        hp = plain.run(8, k=12)
        hw = wrapped.run(8, k=12)
        assert history_rows(hp) == history_rows(hw)
        np.testing.assert_array_equal(
            plain.model.get_weights(), wrapped.model.get_weights()
        )
        for cp, cw in zip(plain.clients, wrapped.clients):
            np.testing.assert_array_equal(cp.residual, cw.residual)
        assert scenario.stats.total_dropped == 0

    def test_pure_over_selection_still_trims_the_cohort(self):
        # No deadline at all, but m·(1+ε) over-selection must still
        # aggregate only the first m finishers — the gate cannot hinge
        # on a deadline being configured.
        config = ScenarioConfig(
            availability="always", deadline=None, participants=3,
            over_selection=0.5, seed=5,
        )
        trainer, scenario = _scenario_trainer("serial",
                                              scenario_config=config)
        trainer.run(3, k=12)
        for r in scenario.stats.rounds:
            assert r.cohort == 5      # ceil(3 * 1.5)
            assert r.arrived == 3
            assert len(r.dropped_ids) == 2


# ----------------------------------------------------------------------
# Partial-aggregation reweighting
# ----------------------------------------------------------------------
class TestReweighting:
    def test_cohort_mode_scales_the_update_down(self):
        def run(reweight):
            config = ScenarioConfig(
                availability="always", deadline=3.0, reweight=reweight,
                seed=11,
            )
            fed = _federation(seed=11, num_writers=2)
            model = make_mlp(64, 8, hidden=(6,), seed=11)
            ids = [c.client_id for c in fed.clients]
            profiles = [
                ClientProfile(ids[0]),
                ClientProfile(ids[1], compute_factor=50.0),
            ]
            timing = TimingModel(model.dimension, comm_time=10.0)
            scenario = DeploymentScenario.build(config, ids, timing, profiles)
            trainer = FLTrainer(
                model, fed, FABTopK(), timing=timing, learning_rate=1.0,
                batch_size=8, eval_every=1, seed=11, scenario=scenario,
            )
            w0 = trainer.model.get_weights()
            trainer.step(12)
            counts = [c.sample_count for c in trainer.clients]
            return trainer.model.get_weights() - w0, counts

        arrived_update, counts = run("arrived")
        cohort_update, _ = run("cohort")
        factor = counts[0] / sum(counts)  # only client 0 arrived
        assert factor < 1.0
        np.testing.assert_allclose(
            cohort_update, arrived_update * factor, rtol=1e-12, atol=1e-15
        )

    def test_server_rejects_nonpositive_total_weight(self):
        from repro.fl.server import Server
        from repro.sparsify.base import SelectionResult

        uploads = _uploads({0: 3})
        selection = SelectionResult(indices=np.arange(3, dtype=np.int64))
        with pytest.raises(ValueError, match="total_weight"):
            Server(100).aggregate(uploads, selection, total_weight=0.0)


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_chained_hooks_order_and_record_k(self):
        calls = []

        class Named(RoundHooks):
            def __init__(self, name, k):
                self.name = name
                self._k = k

            def after_local_steps(self, ctx):
                calls.append(self.name)

            def extra_round_time(self, ctx):
                return 1.5

            def record_k(self, ctx):
                return self._k

        chain = ChainedHooks(Named("outer", 1.0), None, Named("inner", 2.0))
        chain.after_local_steps(None)
        assert calls == ["outer", "inner"]
        assert chain.extra_round_time(None) == 3.0
        assert chain.record_k(None) == 2.0  # innermost wins
        assert chain.round_timing(None) is None
        assert not chain.wants_probes

    def test_scenario_and_sampler_are_mutually_exclusive(self):
        fed = _federation()
        model = make_mlp(64, 8, hidden=(10,), seed=5)
        scenario = DeploymentScenario.build(
            ScenarioConfig(availability="always"),
            [c.client_id for c in fed.clients],
            TimingModel(model.dimension, comm_time=10.0),
        )
        with pytest.raises(ValueError, match="not both"):
            FLTrainer(model, fed, FABTopK(), sampler=object(),
                      scenario=scenario)

    def test_drop_upload_forgets_the_round(self):
        from repro.fl.client import Client

        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(1,), seed=0)
        client = Client(fed.clients[0], model.dimension, batch_size=8)
        client.local_step(model, k=5, sparsifier=FABTopK())
        residual = client.residual.copy()
        client.drop_upload()
        np.testing.assert_array_equal(client.residual, residual)
        with pytest.raises(RuntimeError, match="local_step"):
            client.reset_transmitted(np.array([0, 1]))


# ----------------------------------------------------------------------
# Driver + CLI
# ----------------------------------------------------------------------
class TestScenarioDriverAndCLI:
    def test_run_scenario_smoke(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        config = ExperimentConfig.smoke().with_overrides(num_rounds=6)
        result = run_scenario(config)
        assert set(result.histories) == {"fixed-k", "adaptive-k"}
        assert result.scenario["availability"] == "markov"
        assert set(result.stats) == {"fixed-k", "adaptive-k"}
        for method in result.histories:
            assert len(result.histories[method]) >= 1
            assert 0.0 <= result.drop_rate(method) <= 1.0
        labels = result.delivery.labels()
        assert "fixed-k arrived" in labels
        assert "adaptive-k dropped (cumulative)" in labels

    def test_cli_scenario_writes_artifacts(self, tmp_path):
        from repro import cli

        code = cli.main([
            "scenario", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "5", "--deadline", "2.5", "9",
            "--over-selection", "0.2", "--participants", "4",
        ])
        assert code == 0
        payload = json.loads(
            (tmp_path / "scenario_loss_vs_time.json").read_text()
        )
        assert {s["label"] for s in payload["series"]} == {
            "fixed-k", "adaptive-k"
        }
        assert (tmp_path / "scenario_delivery.json").exists()
        assert (tmp_path / "scenario_history_fixed-k.json").exists()

    def test_cli_scenario_flags_reach_the_config(self):
        from repro import cli

        args = cli.build_parser().parse_args([
            "scenario", "--availability", "diurnal", "--period", "8",
            "--duty", "0.25", "--deadline", "2.0", "2.0", "9.0",
            "--reweight", "cohort", "--seed", "3",
        ])
        scenario = cli._scenario_overrides(args, seed=3)
        assert scenario["availability"] == "diurnal"
        assert scenario["period"] == 8
        assert scenario["deadline"] == [2.0, 2.0, 9.0]
        assert scenario["reweight"] == "cohort"
        assert scenario["seed"] == 3

    def test_sweep_includes_scenario(self):
        from repro.cli import FIGURES
        from repro.parallel.sweep import SWEEP_FIGURES

        assert "scenario" in SWEEP_FIGURES
        assert SWEEP_FIGURES == FIGURES
