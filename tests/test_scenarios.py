"""Deployment-scenario subsystem tests.

Four load-bearing guarantees (the PR acceptance criteria):

(a) **Backend bit-identity under churn** — the same seeded scenario
    (Markov availability, straggler profiles, deadline drops,
    over-selection — including quantized uploads, momentum correction,
    and the online-adapted deadline) produces *identical* histories,
    weights and residuals on the serial, vectorized and sharded
    backends.
(b) **Exact recovery of dropped uploads** — a deadline-dropped client's
    gradient survives in its residual and is transmitted, bit for bit,
    the next time the client makes a deadline.
(c) **Degenerate scenario = plain trainer** — always-available, no
    deadline, full participation reproduces the scenario-free trainer's
    history exactly.
(d) **Golden scenario history** — a pinned churn+deadline+over-selection
    run guards scenario semantics against drift absolutely, not only by
    cross-backend equality.

Plus unit coverage of the availability processes (including
property-based purity tests — the invariant (a) rests on), the deadline
policies (fixed / cycling / adaptive — the dual of the learned k), the
scenario config round-trip, the sampler, partial-aggregation
reweighting, the deadline-policy comparison panel, and the CLI entry
point.
"""

import json
import pathlib

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    HAVE_HYPOTHESIS = False

from repro.compress.quantization import QuantizedSparsifier, UniformQuantizer
from repro.data.partition import partition_by_writer
from repro.data.synthetic import make_femnist_like
from repro.fl.engine import ChainedHooks, RoundHooks
from repro.fl.trainer import FLTrainer
from repro.nn.models import make_mlp
from repro.online.adaptive_trainer import AdaptiveKTrainer
from repro.online.algorithm2 import SignOGD
from repro.online.interval import SearchInterval
from repro.online.policy import SignPolicy
from repro.parallel.sharded import ShardedBackend
from repro.scenarios import (
    AdaptiveDeadlinePolicy,
    AlwaysAvailable,
    CyclingDeadlinePolicy,
    DeadlineObservation,
    DeadlineRoundPolicy,
    DeploymentScenario,
    DiurnalAvailability,
    FixedDeadlinePolicy,
    MarkovAvailability,
    ScenarioConfig,
    ScenarioSampler,
    TraceAvailability,
    build_deadline_schedule,
    resolve_deadline_schedule,
    upload_finish_times,
)
from repro.simulation.heterogeneous import ClientProfile, HeterogeneousTimingModel
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.periodic import PeriodicK

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_histories.json"


def history_rows(history):
    return [
        (
            r.round_index, r.k, r.round_time, r.cumulative_time,
            None if np.isnan(r.loss) else r.loss, r.accuracy,
            r.uplink_elements, r.downlink_elements,
            tuple(sorted(r.contributions.items())),
        )
        for r in history
    ]


# ----------------------------------------------------------------------
# Availability processes
# ----------------------------------------------------------------------
class TestAvailability:
    IDS = [0, 1, 2, 3, 4]

    def test_always_available(self):
        av = AlwaysAvailable(self.IDS)
        assert av.available_ids(1) == self.IDS
        assert av.available_ids(1000) == self.IDS

    def test_markov_is_deterministic_and_cached(self):
        a = MarkovAvailability(self.IDS, p_drop=0.3, p_recover=0.4, seed=9)
        b = MarkovAvailability(self.IDS, p_drop=0.3, p_recover=0.4, seed=9)
        # Query out of order on one, in order on the other: same chain.
        seq_a = [a.available_ids(m) for m in (5, 1, 3, 5, 2, 4)]
        seq_b = [b.available_ids(m) for m in (5, 1, 3, 5, 2, 4)]
        assert seq_a == seq_b
        assert a.available_ids(5) == seq_a[0]  # cached, not re-drawn

    def test_markov_edge_probabilities(self):
        never_drop = MarkovAvailability(self.IDS, p_drop=0.0, p_recover=0.0)
        for m in range(1, 10):
            assert never_drop.available_ids(m) == self.IDS
        flip = MarkovAvailability(self.IDS, p_drop=1.0, p_recover=1.0)
        assert flip.available_ids(1) == []      # all dropped after round 0
        assert flip.available_ids(2) == self.IDS  # all recovered

    def test_markov_rejects_bad_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            MarkovAvailability(self.IDS, p_drop=1.5)

    def test_diurnal_full_duty_is_always_on(self):
        av = DiurnalAvailability(self.IDS, period=6, duty=1.0, seed=0)
        for m in (1, 3, 6, 7, 100):
            assert av.available_ids(m) == self.IDS

    def test_diurnal_cycles_deterministically(self):
        av = DiurnalAvailability(self.IDS, period=4, duty=0.5, seed=2)
        first_day = [av.available_ids(m) for m in range(1, 5)]
        second_day = [av.available_ids(m) for m in range(5, 9)]
        assert first_day == second_day
        # duty 0.5 of period 4 => every client online exactly 2 rounds/day
        per_client = sum(len(ids) for ids in first_day)
        assert per_client == 2 * len(self.IDS)

    def test_trace_replay_cycle_and_hold(self):
        rounds = [[0, 1], [2], [3, 4]]
        cyc = TraceAvailability(self.IDS, rounds, cycle=True)
        assert [cyc.available_ids(m) for m in (1, 2, 3, 4)] == [
            [0, 1], [2], [3, 4], [0, 1]
        ]
        hold = TraceAvailability(self.IDS, rounds, cycle=False)
        assert hold.available_ids(9) == [3, 4]

    def test_trace_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="unknown client ids"):
            TraceAvailability(self.IDS, [[0, 99]])

    def test_trace_from_json(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"rounds": [[0], [1, 2]], "cycle": False}))
        av = TraceAvailability.from_json(path, self.IDS)
        assert av.available_ids(1) == [0]
        assert av.available_ids(5) == [1, 2]
        assert not av.cycle


# ----------------------------------------------------------------------
# Availability purity properties (hypothesis)
#
# Backend bit-identity rests on the determinism contract of
# ClientAvailability: available(cid, round) must be a pure function of
# (construction args, round_index) — identical across repeated calls, in
# any query order, and across freshly built instances with the same
# seed.  Property-based coverage so no adversarial (ids, probabilities,
# query order) combination slips through the example tests above.
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    ids_strategy = st.lists(
        st.integers(min_value=0, max_value=40),
        min_size=1, max_size=8, unique=True,
    )
    seed_strategy = st.integers(min_value=0, max_value=2**16)
    query_strategy = st.lists(
        st.integers(min_value=1, max_value=25), min_size=1, max_size=12
    )
    probability_strategy = st.floats(
        min_value=0.0, max_value=1.0, allow_nan=False
    )

    class TestAvailabilityProperties:
        @settings(max_examples=50, deadline=None)
        @given(
            ids=ids_strategy,
            p_drop=probability_strategy,
            p_recover=probability_strategy,
            seed=seed_strategy,
            queries=query_strategy,
        )
        def test_markov_purity(self, ids, p_drop, p_recover, seed, queries):
            first = MarkovAvailability(ids, p_drop, p_recover, seed=seed)
            fresh = MarkovAvailability(ids, p_drop, p_recover, seed=seed)
            known = set(first.client_ids)
            for m in queries:
                observed = first.available_ids(m)
                # Pure across repeated calls on one instance...
                assert first.available_ids(m) == observed
                # ...and across a freshly built instance queried in
                # this (arbitrary) order with the same seed.
                assert fresh.available_ids(m) == observed
                assert observed == sorted(observed)
                assert set(observed) <= known
            # In-order replay on a third instance matches too.
            replay = MarkovAvailability(ids, p_drop, p_recover, seed=seed)
            for m in range(1, max(queries) + 1):
                replay.available_ids(m)
            for m in queries:
                assert replay.available_ids(m) == first.available_ids(m)

        @settings(max_examples=50, deadline=None)
        @given(
            ids=ids_strategy,
            period=st.integers(min_value=1, max_value=12),
            duty=st.floats(
                min_value=0.05, max_value=1.0, allow_nan=False
            ),
            seed=seed_strategy,
            queries=query_strategy,
        )
        def test_diurnal_purity_and_period(
            self, ids, period, duty, seed, queries
        ):
            first = DiurnalAvailability(ids, period, duty, seed=seed)
            fresh = DiurnalAvailability(ids, period, duty, seed=seed)
            for m in queries:
                observed = first.available_ids(m)
                assert first.available_ids(m) == observed
                assert fresh.available_ids(m) == observed
                assert observed == sorted(observed)
                # Deterministic duty cycle: one full period later the
                # same set is online.
                assert first.available_ids(m + period) == observed

        @settings(max_examples=50, deadline=None)
        @given(data=st.data(), ids=ids_strategy, queries=query_strategy)
        def test_trace_purity_cycle_and_hold(self, data, ids, queries):
            rounds = data.draw(st.lists(
                st.lists(st.sampled_from(sorted(set(ids))), unique=True),
                min_size=1, max_size=6,
            ))
            cycling = TraceAvailability(ids, rounds, cycle=True)
            holding = TraceAvailability(ids, rounds, cycle=False)
            for m in queries:
                observed = cycling.available_ids(m)
                assert cycling.available_ids(m) == observed
                assert observed == cycling.available_ids(m + len(rounds))
                assert observed == sorted(rounds[(m - 1) % len(rounds)])
                held = holding.available_ids(m)
                assert held == sorted(
                    rounds[min(m - 1, len(rounds) - 1)]
                )

        @settings(max_examples=25, deadline=None)
        @given(ids=ids_strategy, queries=query_strategy)
        def test_always_purity(self, ids, queries):
            available = AlwaysAvailable(ids)
            for m in queries:
                assert available.available_ids(m) == sorted(ids)

    scenario_config_strategy = st.builds(
        ScenarioConfig,
        availability=st.sampled_from(("always", "markov", "diurnal")),
        p_drop=probability_strategy,
        p_recover=probability_strategy,
        period=st.integers(min_value=1, max_value=48),
        duty=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        participants=st.integers(min_value=0, max_value=6),
        deadline=st.one_of(
            st.none(),
            st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
            st.lists(
                st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
                min_size=1, max_size=4,
            ).map(tuple),
        ),
        min_uploads=st.integers(min_value=1, max_value=3),
        reweight=st.sampled_from(("arrived", "cohort")),
        slow_fraction=probability_strategy,
        slow_factor=st.floats(
            min_value=1.0, max_value=10.0, allow_nan=False
        ),
        seed=seed_strategy,
    )

    class TestScenarioConfigProperties:
        @settings(max_examples=60, deadline=None)
        @given(config=scenario_config_strategy)
        def test_dict_round_trip(self, config):
            data = config.to_dict()
            assert ScenarioConfig.from_dict(data) == config
            # And through an actual JSON wire format (the sweep cache).
            assert ScenarioConfig.from_dict(
                json.loads(json.dumps(data))
            ) == config

        @settings(max_examples=40, deadline=None)
        @given(
            data=st.data(),
            ids=ids_strategy,
            cycle=st.booleans(),
            seed=seed_strategy,
        )
        def test_trace_config_round_trip(self, data, ids, cycle, seed):
            rounds = data.draw(st.lists(
                st.lists(st.sampled_from(sorted(set(ids))), unique=True),
                min_size=1, max_size=5,
            ))
            config = ScenarioConfig(
                availability="trace",
                trace=tuple(tuple(entry) for entry in rounds),
                trace_cycle=cycle,
                seed=seed,
            )
            payload = json.loads(json.dumps(config.to_dict()))
            rebuilt = ScenarioConfig.from_dict(payload)
            assert rebuilt == config
            # The replayed process is the same one, round for round.
            original = DeploymentScenario.build(
                config, sorted(ids),
                TimingModel(dimension=10, comm_time=1.0),
            )
            replayed = DeploymentScenario.build(
                rebuilt, sorted(ids),
                TimingModel(dimension=10, comm_time=1.0),
            )
            for m in range(1, 2 * len(rounds) + 2):
                assert (
                    original.sampler.availability.available_ids(m)
                    == replayed.sampler.availability.available_ids(m)
                )

        @settings(max_examples=40, deadline=None)
        @given(
            bounds=st.tuples(
                st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
                st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
            ).filter(lambda pair: pair[0] < pair[1]),
            probe=st.booleans(),
            seed=seed_strategy,
        )
        def test_adaptive_config_round_trip(self, bounds, probe, seed):
            dmin, dmax = bounds
            config = ScenarioConfig(
                deadline_policy="adaptive",
                deadline_min=dmin, deadline_max=dmax,
                deadline_probe=probe, seed=seed,
            )
            payload = json.loads(json.dumps(config.to_dict()))
            assert ScenarioConfig.from_dict(payload) == config


# ----------------------------------------------------------------------
# Deadline policy
# ----------------------------------------------------------------------
def _uploads(nnz_by_client):
    dimension = 100
    uploads = []
    for cid, nnz in nnz_by_client.items():
        indices = np.arange(nnz, dtype=np.int64)
        uploads.append(ClientUpload(
            client_id=cid,
            payload=SparseVector.from_sorted(
                indices, np.ones(nnz), dimension
            ),
            sample_count=10,
        ))
    return uploads


class TestDeadlinePolicy:
    TIMING = TimingModel(dimension=100, comm_time=10.0)

    def test_finish_times_scale_with_profiles(self):
        uploads = _uploads({0: 10, 1: 10})
        policy = DeadlineRoundPolicy(deadline=5.0)
        base = policy.finish_times(uploads, self.TIMING)
        np.testing.assert_allclose(base, base[0])
        profiles = {1: ClientProfile(1, compute_factor=3.0, comm_factor=2.0)}
        slowed = policy.finish_times(uploads, self.TIMING, profiles)
        assert slowed[0] == base[0]
        uplink = self.TIMING.sparse_round(10, 0).uplink
        assert slowed[1] == pytest.approx(3.0 * 1.0 + 2.0 * uplink)

    def test_all_in_time_closes_at_last_finish(self):
        uploads = _uploads({0: 10, 1: 20})
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING
        )
        assert verdict.accepted == (0, 1)
        assert verdict.dropped_ids == ()
        assert verdict.close_time == pytest.approx(max(verdict.finish_times))
        assert verdict.close_time < 50.0

    def test_late_upload_dropped_and_deadline_charged(self):
        uploads = _uploads({0: 10, 1: 10})
        profiles = {1: ClientProfile(1, compute_factor=40.0)}
        verdict = DeadlineRoundPolicy(deadline=5.0).admit(
            1, uploads, self.TIMING, profiles
        )
        assert verdict.accepted == (0,)
        assert verdict.dropped_ids == (1,)
        # The server waited for the deadline, not the straggler tail.
        assert verdict.close_time == 5.0

    def test_over_selection_closes_on_mth_finisher(self):
        uploads = _uploads({0: 10, 1: 20, 2: 30})
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING, target_uploads=2
        )
        # Fastest two (smallest payloads) accepted, slowest dropped even
        # though it was within the deadline; close at the 2nd finisher.
        assert verdict.accepted == (0, 1)
        assert verdict.dropped_ids == (2,)
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])

    def test_target_reached_exactly_still_closes_early(self):
        # Boundary case: exactly m uploads beat the deadline.  The server
        # has its m-th upload the moment it lands and closes there — it
        # must not sit out the rest of the deadline window.
        uploads = _uploads({0: 10, 1: 20, 2: 10, 3: 10})
        profiles = {3: ClientProfile(3, compute_factor=100.0)}
        verdict = DeadlineRoundPolicy(deadline=50.0).admit(
            1, uploads, self.TIMING, profiles, target_uploads=3
        )
        assert verdict.accepted == (0, 1, 2)
        assert verdict.dropped_ids == (3,)
        # Client 1's larger payload makes it the 3rd (last) finisher.
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])
        assert verdict.close_time < 50.0

    def test_over_selection_applies_without_deadline(self):
        uploads = _uploads({0: 10, 1: 20, 2: 30})
        policy = DeadlineRoundPolicy(deadline=None, over_selection=0.5)
        assert policy.applies(target_uploads=2)
        assert not policy.applies(target_uploads=None)
        verdict = policy.admit(1, uploads, self.TIMING, target_uploads=2)
        assert verdict.accepted == (0, 1)
        assert verdict.close_time == pytest.approx(verdict.finish_times[1])

    def test_min_uploads_floor_extends_the_round(self):
        uploads = _uploads({0: 10, 1: 10})
        profiles = {
            0: ClientProfile(0, compute_factor=30.0),
            1: ClientProfile(1, compute_factor=40.0),
        }
        verdict = DeadlineRoundPolicy(deadline=2.0, min_uploads=1).admit(
            1, uploads, self.TIMING, profiles
        )
        assert verdict.accepted == (0,)
        assert verdict.close_time == pytest.approx(verdict.finish_times[0])
        assert verdict.close_time > 2.0  # round extended past the deadline

    def test_deadline_schedule_cycles(self):
        policy = DeadlineRoundPolicy(deadline=(2.0, 2.0, 9.0))
        assert [policy.deadline_for(m) for m in range(1, 7)] == [
            2.0, 2.0, 9.0, 2.0, 2.0, 9.0
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="min_uploads"):
            DeadlineRoundPolicy(5.0, min_uploads=0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineRoundPolicy(-1.0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineRoundPolicy((2.0, 0.0))
        with pytest.raises(ValueError, match="over_selection"):
            DeadlineRoundPolicy(5.0, over_selection=-0.1)
        assert DeadlineRoundPolicy(None).active is False
        assert DeadlineRoundPolicy(5.0).active is True


# ----------------------------------------------------------------------
# Deadline schedules: fixed / cycling / adaptive (the dual of learned k)
# ----------------------------------------------------------------------
class TestFinishTimeHelper:
    def test_pinned_values_for_known_profiles(self):
        # The one arrival-time computation every policy shares:
        # finish = computation·compute_factor + uplink(nnz)·comm_factor
        # with uplink(nnz) = (comm_time/2)·(pair_overhead·nnz)/D.
        timing = TimingModel(dimension=100, comm_time=10.0)
        uploads = _uploads({0: 10, 1: 10, 2: 25})
        profiles = {
            1: ClientProfile(1, compute_factor=3.0, comm_factor=2.0),
            2: ClientProfile(2, compute_factor=4.0, comm_factor=4.0),
        }
        times = upload_finish_times(uploads, timing, profiles)
        # nnz=10 → uplink = 5·20/100 = 1.0; nnz=25 → uplink = 5·50/100 = 2.5
        np.testing.assert_allclose(
            times, [1.0 + 1.0, 3.0 + 2.0, 4.0 + 10.0]
        )
        # No profiles: everyone at the unit profile.
        np.testing.assert_allclose(
            upload_finish_times(uploads, timing), [2.0, 2.0, 3.5]
        )

    def test_round_policy_delegates_to_helper(self):
        timing = TimingModel(dimension=100, comm_time=10.0)
        uploads = _uploads({0: 10, 1: 25})
        policy = DeadlineRoundPolicy(deadline=5.0)
        np.testing.assert_array_equal(
            policy.finish_times(uploads, timing),
            upload_finish_times(uploads, timing),
        )


class TestDeadlineSchedules:
    def test_fixed_is_constant_and_none_inactive(self):
        fixed = FixedDeadlinePolicy(4.0)
        assert [fixed.deadline_for(m) for m in (1, 7, 100)] == [4.0] * 3
        assert fixed.active
        assert fixed.probe_deadline(1) is None
        idle = FixedDeadlinePolicy(None)
        assert idle.deadline_for(3) is None
        assert not idle.active
        with pytest.raises(ValueError, match="positive"):
            FixedDeadlinePolicy(0.0)

    def test_cycling_cycles(self):
        cycling = CyclingDeadlinePolicy((2.0, 2.0, 9.0))
        assert [cycling.deadline_for(m) for m in range(1, 7)] == [
            2.0, 2.0, 9.0, 2.0, 2.0, 9.0
        ]
        assert cycling.active
        with pytest.raises(ValueError, match="empty"):
            CyclingDeadlinePolicy(())
        with pytest.raises(ValueError, match="positive"):
            CyclingDeadlinePolicy((2.0, -1.0))

    def test_resolve_deadline_schedule(self):
        assert isinstance(
            resolve_deadline_schedule(5.0), FixedDeadlinePolicy
        )
        assert isinstance(
            resolve_deadline_schedule(None), FixedDeadlinePolicy
        )
        assert isinstance(
            resolve_deadline_schedule((2.0, 9.0)), CyclingDeadlinePolicy
        )
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 9.0))
        assert resolve_deadline_schedule(adaptive) is adaptive
        # DeadlineRoundPolicy accepts any of the raw forms or a policy.
        assert DeadlineRoundPolicy(adaptive).schedule is adaptive
        assert DeadlineRoundPolicy(adaptive).active

    def test_adaptive_starts_at_midpoint_or_d1(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        assert adaptive.deadline == 6.0
        assert adaptive.deadline_for(1) == 6.0
        explicit = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0), d1=3.0)
        assert explicit.deadline == 3.0
        with pytest.raises(ValueError, match="outside"):
            AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0), d1=1.0)

    def test_adaptive_probe_is_below_and_never_unavailable(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        probe = adaptive.probe_deadline(1)
        assert probe is not None
        assert probe == pytest.approx(
            max(6.0 - adaptive.algorithm.step_size() / 2.0, 3.0)
        )
        assert 0.0 < probe < adaptive.deadline
        # Even pinned at the interval's lower edge the probe stays
        # available (floor d/2) — the walk cannot get stuck at dmin the
        # way the k-policy can at k=1.
        pinned = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0), d1=2.0)
        probe = pinned.probe_deadline(1)
        assert probe is not None and 0.0 < probe < 2.0

    def test_adaptive_probe_disabled(self):
        frozen = AdaptiveDeadlinePolicy(
            SearchInterval(2.0, 10.0), probe=False
        )
        assert frozen.probe_deadline(1) is None
        frozen.observe(DeadlineObservation(
            deadline=6.0, round_time=5.0, loss_prev=1.0, loss_now=0.5,
        ))
        assert frozen.deadline == 6.0  # unchanged, round advanced
        assert frozen.algorithm.m == 2

    def _observation(self, adaptive, loss_probe, probe_round_time):
        d = adaptive.deadline
        probe = adaptive.probe_deadline(1)
        return DeadlineObservation(
            deadline=d, round_time=5.0, loss_prev=1.0, loss_now=0.5,
            loss_probe=loss_probe, probe_deadline=probe,
            probe_round_time=probe_round_time,
        )

    def test_adaptive_descends_when_tighter_is_cheaper(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        before = adaptive.deadline
        # Probe matched the actual loss decrease at lower cost:
        # τ̂ = 3·0.5/0.5 = 3 < τ = 5 → derivative > 0 → tighten.
        adaptive.observe(self._observation(
            adaptive, loss_probe=0.5, probe_round_time=3.0
        ))
        assert adaptive.deadline < before

    def test_adaptive_loosens_when_tighter_loses_information(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        before = adaptive.deadline
        # Probe barely decreased the loss: τ̂ = 3·0.5/0.1 = 15 > τ = 5
        # → derivative < 0 → loosen.
        adaptive.observe(self._observation(
            adaptive, loss_probe=0.9, probe_round_time=3.0
        ))
        assert adaptive.deadline > before

    def test_adaptive_unusable_estimate_keeps_deadline(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        before = adaptive.deadline
        # The round failed to decrease the probe loss → estimate
        # unavailable → d unchanged (the paper's rule for k).
        adaptive.observe(self._observation(
            adaptive, loss_probe=1.2, probe_round_time=3.0
        ))
        assert adaptive.deadline == before
        assert adaptive.algorithm.m == 2  # round still advanced

    def test_adaptive_projects_into_interval_and_tracks_history(self):
        adaptive = AdaptiveDeadlinePolicy(
            SearchInterval(5.0, 6.0), d1=5.0
        )
        for _ in range(4):
            adaptive.observe(self._observation(
                adaptive, loss_probe=0.5, probe_round_time=3.0
            ))
        assert adaptive.deadline == 5.0  # projected at the lower edge
        assert adaptive.deadline_history == [5.0] * 5
        assert all(
            SearchInterval(5.0, 6.0).contains(d)
            for d in adaptive.deadline_history
        )

    def _two_sided(self, adaptive, loss_probe, probe_round_time,
                   loss_probe_up, probe_round_time_up):
        d = adaptive.deadline
        return DeadlineObservation(
            deadline=d, round_time=5.0, loss_prev=1.0, loss_now=0.5,
            loss_probe=loss_probe, probe_deadline=adaptive.probe_deadline(1),
            probe_round_time=probe_round_time,
            loss_probe_up=loss_probe_up,
            probe_deadline_up=adaptive.probe_deadline_up(1),
            probe_round_time_up=probe_round_time_up,
        )

    def test_up_probe_sits_strictly_above_the_deadline(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        up = adaptive.probe_deadline_up(1)
        assert up == pytest.approx(
            6.0 + adaptive.algorithm.step_size() / 2.0
        )
        assert up > adaptive.deadline
        frozen = AdaptiveDeadlinePolicy(
            SearchInterval(2.0, 10.0), probe=False
        )
        assert frozen.probe_deadline_up(1) is None

    def test_up_estimate_breaks_the_deadlock(self):
        # One-sided rule: the tighter replay failed to decrease the
        # loss, so the d'-estimate is unavailable and d would freeze
        # (test_adaptive_unusable_estimate_keeps_deadline).  The upward
        # replay recovered the dropped uploads and moved the loss:
        # τ̂_up = 6·0.5/0.8 = 3.75 < τ = 5 with d'' > d → derivative
        # < 0 → loosen.
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        before = adaptive.deadline
        adaptive.observe(self._two_sided(
            adaptive, loss_probe=1.2, probe_round_time=3.0,
            loss_probe_up=0.2, probe_round_time_up=6.0,
        ))
        assert adaptive.deadline > before
        assert adaptive.algorithm.m == 2

    def test_down_estimate_stays_primary(self):
        # Both replays usable but pointing in opposite directions: the
        # d'-estimate drives the walk exactly as in the one-sided
        # policy (a summed combination deadlocks the walk in the tight
        # regime — the signs cancel); d'' is fallback only.
        one_sided = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        one_sided.observe(self._observation(
            one_sided, loss_probe=0.5, probe_round_time=3.0
        ))
        two_sided = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        two_sided.observe(self._two_sided(
            two_sided, loss_probe=0.5, probe_round_time=3.0,
            loss_probe_up=0.2, probe_round_time_up=6.0,
        ))
        assert two_sided.deadline == one_sided.deadline < 6.0

    def test_both_estimates_unusable_keeps_deadline(self):
        adaptive = AdaptiveDeadlinePolicy(SearchInterval(2.0, 10.0))
        before = adaptive.deadline
        adaptive.observe(self._two_sided(
            adaptive, loss_probe=1.2, probe_round_time=3.0,
            loss_probe_up=1.1, probe_round_time_up=6.0,
        ))
        assert adaptive.deadline == before
        assert adaptive.algorithm.m == 2  # round still advanced

    def test_build_deadline_schedule_dispatch(self):
        fixed = build_deadline_schedule(
            ScenarioConfig(deadline=4.0, deadline_policy="fixed")
        )
        assert isinstance(fixed, FixedDeadlinePolicy)
        assert fixed.deadline == 4.0
        cycling = build_deadline_schedule(
            ScenarioConfig(deadline=(2.0, 9.0), deadline_policy="cycling")
        )
        assert isinstance(cycling, CyclingDeadlinePolicy)
        assert cycling.schedule == (2.0, 9.0)
        adaptive = build_deadline_schedule(ScenarioConfig(
            deadline_policy="adaptive", deadline=3.0,
            deadline_min=2.0, deadline_max=9.0, deadline_probe=False,
        ))
        assert isinstance(adaptive, AdaptiveDeadlinePolicy)
        assert adaptive.deadline == 3.0
        assert adaptive.interval.kmin == 2.0
        assert adaptive.interval.kmax == 9.0
        assert not adaptive.probe


# ----------------------------------------------------------------------
# ScenarioConfig
# ----------------------------------------------------------------------
class TestScenarioConfig:
    def test_round_trips_through_dict(self):
        config = ScenarioConfig(
            availability="trace",
            trace=((0, 1), (2,)),
            deadline=(2.5, 9.0),
            participants=3,
            over_selection=0.5,
            reweight="cohort",
            slow_fraction=0.25,
            seed=7,
        )
        data = config.to_dict()
        json.dumps(data)  # must be JSON-ready (sweep cache keys)
        assert ScenarioConfig.from_dict(data) == config

    def test_validation(self):
        with pytest.raises(ValueError, match="availability"):
            ScenarioConfig(availability="quantum")
        with pytest.raises(ValueError, match="trace"):
            ScenarioConfig(availability="trace")
        with pytest.raises(ValueError, match="participants"):
            ScenarioConfig(over_selection=0.5)
        with pytest.raises(ValueError, match="reweight"):
            ScenarioConfig(reweight="magic")
        with pytest.raises(ValueError, match="duty"):
            ScenarioConfig(duty=0.0)

    def test_build_profiles_is_seeded_and_sized(self):
        config = ScenarioConfig(slow_fraction=0.5, slow_factor=3.0, seed=4)
        ids = list(range(10))
        first = config.build_profiles(ids)
        second = config.build_profiles(ids)
        assert first == second
        slow = [p for p in first if p.compute_factor == 3.0]
        assert len(slow) == 5
        assert all(p.comm_factor == 3.0 for p in slow)

    def test_experiment_config_carries_scenario(self):
        from repro.experiments.config import ExperimentConfig

        scenario = ScenarioConfig.default_churn().to_dict()
        config = ExperimentConfig.smoke().with_overrides(scenario=scenario)
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError, match="scenario"):
            ExperimentConfig.smoke().with_overrides(scenario="churn")

    def test_deadline_policy_validation(self):
        with pytest.raises(ValueError, match="deadline_policy"):
            ScenarioConfig(deadline_policy="oracle")
        with pytest.raises(ValueError, match="cycling"):
            ScenarioConfig(deadline=5.0, deadline_policy="cycling")
        with pytest.raises(ValueError, match="deadline_min"):
            ScenarioConfig(deadline_policy="adaptive")
        with pytest.raises(ValueError, match="deadline_min"):
            ScenarioConfig(deadline=5.0, deadline_policy="adaptive")
        with pytest.raises(ValueError, match="deadline_min"):
            ScenarioConfig(
                deadline_policy="adaptive",
                deadline_min=9.0, deadline_max=2.0,
            )
        with pytest.raises(ValueError, match="outside"):
            ScenarioConfig(
                deadline_policy="adaptive", deadline=1.0,
                deadline_min=2.0, deadline_max=9.0,
            )
        with pytest.raises(ValueError, match="only apply"):
            ScenarioConfig(deadline=5.0, deadline_min=2.0)

    def test_deadline_policy_normalization(self):
        # Legacy dicts predate the field: a schedule means cycling.
        legacy = ScenarioConfig(deadline=(2.5, 9.0))
        assert legacy.deadline_policy == "cycling"
        assert legacy.deadline == (2.5, 9.0)
        # A 1-entry schedule under "fixed" collapses to its scalar.
        single = ScenarioConfig(deadline=(4.0,), deadline_policy="fixed")
        assert single.deadline_policy == "fixed"
        assert single.deadline == 4.0
        # Adaptive derives its interval from a schedule and clears the
        # schedule (d1 defaults to the interval midpoint).
        derived = ScenarioConfig(
            deadline=(2.5, 2.5, 9.0), deadline_policy="adaptive"
        )
        assert derived.deadline is None
        assert derived.deadline_min == 2.5
        assert derived.deadline_max == 9.0
        assert ScenarioConfig.from_dict(derived.to_dict()) == derived

    def test_legacy_dict_without_policy_fields_loads(self):
        data = ScenarioConfig.default_churn().to_dict()
        for field_name in (
            "deadline_policy", "deadline_min", "deadline_max",
            "deadline_probe",
        ):
            data.pop(field_name)
        config = ScenarioConfig.from_dict(data)
        assert config.deadline_policy == "cycling"
        assert config.deadline == (2.5, 2.5, 2.5, 9.0)


# ----------------------------------------------------------------------
# ScenarioSampler
# ----------------------------------------------------------------------
class TestScenarioSampler:
    def test_full_participation_consumes_no_rng(self):
        av = AlwaysAvailable([3, 1, 2])
        sampler = ScenarioSampler(av, count=0, seed=0)
        state_before = sampler._rng.bit_generator.state
        assert sampler.sample() == [1, 2, 3]
        assert sampler._rng.bit_generator.state == state_before

    def test_over_selection_cohort_size(self):
        av = AlwaysAvailable(list(range(10)))
        sampler = ScenarioSampler(av, count=4, over_selection=0.5, seed=1)
        assert sampler.cohort_size == 6
        cohort = sampler.sample()
        assert len(cohort) == 6
        assert cohort == sorted(cohort)

    def test_empty_round_falls_back_to_population(self):
        av = MarkovAvailability([0, 1], p_drop=1.0, p_recover=1.0)
        sampler = ScenarioSampler(av, count=0, seed=0)
        assert sampler.sample() == [0, 1]  # round 1: everyone offline

    def test_rejects_oversized_count(self):
        with pytest.raises(ValueError, match="count"):
            ScenarioSampler(AlwaysAvailable([0, 1]), count=3)


# ----------------------------------------------------------------------
# End-to-end scenario runs
# ----------------------------------------------------------------------
def _federation(seed=5, num_writers=8):
    ds = make_femnist_like(num_writers=num_writers, samples_per_writer=16,
                           num_classes=8, image_size=8, classes_per_writer=4,
                           seed=seed)
    return partition_by_writer(ds, seed=seed)


CHURN = ScenarioConfig(
    availability="markov",
    p_drop=0.2,
    p_recover=0.6,
    participants=5,
    over_selection=0.4,
    deadline=(2.5, 2.5, 9.0),
    slow_fraction=0.25,
    slow_factor=4.0,
    seed=5,
)


ADAPTIVE_CHURN = CHURN.with_overrides(deadline_policy="adaptive")

#: backend-equivalence matrix rows: scenario config + sparsifier factory
#: + momentum — quantized uploads and momentum correction under deadline
#: drops, and the online-adapted deadline, all must stay bit-identical.
SCENARIO_VARIANTS = {
    "churn": (CHURN, lambda: FABTopK(), 0.0),
    "quantized": (
        CHURN,
        lambda: QuantizedSparsifier(
            FABTopK(), UniformQuantizer(num_levels=15, seed=5)
        ),
        0.0,
    ),
    "momentum": (CHURN, lambda: FABTopK(), 0.5),
    "adaptive-deadline": (ADAPTIVE_CHURN, lambda: FABTopK(), 0.0),
}


def _scenario_trainer(backend, scenario_config=CHURN, sparsifier=None,
                      seed=5, momentum_correction=0.0):
    fed = _federation(seed=seed)
    model = make_mlp(64, 8, hidden=(10,), seed=seed)
    ids = [c.client_id for c in fed.clients]
    profiles = scenario_config.build_profiles(ids)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    scenario = DeploymentScenario.build(scenario_config, ids, timing, profiles)
    trainer = FLTrainer(
        model, fed, sparsifier if sparsifier is not None else FABTopK(),
        timing=timing, learning_rate=0.05, batch_size=8, eval_every=3,
        seed=seed, backend=backend, scenario=scenario,
        momentum_correction=momentum_correction,
    )
    return trainer, scenario


class TestScenarioBackendEquivalence:
    """Acceptance (a): same seed => bit-identical histories across backends."""

    @pytest.mark.parametrize("backend_name", ["vectorized", "sharded"])
    @pytest.mark.parametrize("variant", sorted(SCENARIO_VARIANTS))
    def test_churn_histories_identical(self, variant, backend_name):
        scenario_config, sparsifier_factory, momentum = SCENARIO_VARIANTS[
            variant
        ]
        backend = (
            ShardedBackend(jobs=2) if backend_name == "sharded"
            else backend_name
        )

        def build(backend_spec):
            return _scenario_trainer(
                backend_spec, scenario_config=scenario_config,
                sparsifier=sparsifier_factory(),
                momentum_correction=momentum,
            )

        serial, s_scn = build("serial")
        fast, f_scn = build(backend)
        hs = serial.run(9, k=12)
        hf = fast.run(9, k=12)
        assert history_rows(hs) == history_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        for cs, cf in zip(serial.clients, fast.clients):
            np.testing.assert_array_equal(cs.residual, cf.residual)
        # The deadline gate fired identically too.
        assert [r.dropped_ids for r in s_scn.stats.rounds] == [
            r.dropped_ids for r in f_scn.stats.rounds
        ]
        assert s_scn.stats.total_dropped > 0  # the scenario actually bites
        if variant == "adaptive-deadline":
            # The adaptation state lives in the parent and walked the
            # same path on both backends — and it actually walked.
            trace_s = s_scn.hooks.policy.schedule.deadline_history
            trace_f = f_scn.hooks.policy.schedule.deadline_history
            assert trace_s == trace_f
            assert len(set(trace_s)) > 1
        fast.close()

    @pytest.mark.parametrize("scenario_config", [CHURN, ADAPTIVE_CHURN],
                             ids=["cycling", "adaptive-deadline"])
    def test_adaptive_trainer_composes_with_scenario(self, scenario_config):
        # With ADAPTIVE_CHURN this is the double-adaptive composition:
        # the trainer learns k while the scenario hook learns the
        # deadline, both through ChainedHooks, still bit-identical.
        def build(backend):
            fed = _federation()
            model = make_mlp(64, 8, hidden=(10,), seed=5)
            ids = [c.client_id for c in fed.clients]
            profiles = scenario_config.build_profiles(ids)
            timing = HeterogeneousTimingModel(
                model.dimension, comm_time=10.0, profiles=profiles
            )
            scenario = DeploymentScenario.build(
                scenario_config, ids, timing, profiles
            )
            policy = SignPolicy(
                SignOGD(SearchInterval(2.0, float(model.dimension)))
            )
            return AdaptiveKTrainer(
                model, fed, FABTopK(), policy, timing, learning_rate=0.05,
                batch_size=8, eval_every=2, seed=5, backend=backend,
                scenario=scenario,
            )

        fast = build("vectorized")
        assert history_rows(build("serial").run(6)) == history_rows(
            fast.run(6)
        )
        fast.close()


class TestPopulationSampler:
    """The O(cohort) rejection sampler over a virtual population."""

    def _model(self, **overrides):
        from repro.simulation.population import PopulationModel

        kwargs = dict(
            population=500, availability="markov", p_drop=0.2,
            p_recover=0.6, seed=0,
        )
        kwargs.update(overrides)
        return PopulationModel(**kwargs)

    def test_rejects_degenerate_construction(self):
        from repro.scenarios import PopulationSampler

        model = self._model()
        with pytest.raises(ValueError, match="cohort size"):
            PopulationSampler(model, count=0)
        with pytest.raises(ValueError, match="over_selection"):
            PopulationSampler(model, count=4, over_selection=-0.1)
        with pytest.raises(ValueError, match="max_attempts"):
            PopulationSampler(model, count=4, max_attempts=0)

    def test_build_requires_an_explicit_cohort(self):
        # participants=0 means "all available" in the list-based path —
        # an O(population) round, exactly what the virtual path forbids.
        from repro.scenarios import build_population_scenario

        config = ScenarioConfig.default_churn().with_overrides(
            participants=0, seed=0
        )
        timing = TimingModel(dimension=10, comm_time=10.0)
        with pytest.raises(ValueError, match="participants"):
            build_population_scenario(config, 1000, timing)

    def test_cohort_is_distinct_online_and_deterministic(self):
        from repro.scenarios import PopulationSampler

        a = PopulationSampler(self._model(), count=6, seed=3)
        b = PopulationSampler(self._model(), count=6, seed=3)
        for round_index in range(1, 5):
            cohort = a.sample()
            assert cohort == b.sample()  # pure in (seed, round)
            assert len(cohort) == 6
            assert len(set(cohort)) == 6
            assert all(
                self._model().is_online(cid, round_index) for cid in cohort
            )

    def test_deep_outage_falls_back_to_offline_candidates(self):
        # Nobody ever recovers: the round still runs, filled from the
        # offline candidates in draw order (the population analogue of
        # the list sampler's everyone-offline fallback).
        from repro.scenarios import PopulationSampler

        dark = self._model(p_drop=1.0, p_recover=0.0)
        sampler = PopulationSampler(dark, count=5, seed=1, max_attempts=2)
        sampler.sample()  # round 1: initial all-online state may linger
        cohort = sampler.sample()
        assert len(cohort) == 5
        assert len(set(cohort)) == 5
        assert not any(dark.is_online(cid, 2) for cid in cohort)


class TestVirtualScenarioEquivalence:
    """Scenario drops over a virtual federation equal its eager twin.

    Same churn + deadline + over-selection gate, same seeds — the only
    difference is the data/client layer (lazy regeneration, LRU
    releases, optional hibernation spilling).  Histories, weights,
    residuals and the per-round drop sets must all stay bit-identical
    to the run over ``federation.materialize()``.
    """

    #: (sparsifier factory, momentum, virtual-side spill_after)
    VARIANTS = {
        "churn": (lambda: FABTopK(), 0.0, 0),
        "quantized": (
            lambda: QuantizedSparsifier(
                FABTopK(), UniformQuantizer(num_levels=15, seed=7)
            ),
            0.0,
            0,
        ),
        "momentum": (lambda: FABTopK(), 0.5, 0),
        "spill": (lambda: FABTopK(), 0.0, 2),
    }

    def _virtual(self, seed=7):
        from repro.data.virtual import VirtualFederation

        return VirtualFederation.build(
            8, samples_per_client=14, num_classes=8, image_size=8,
            classes_per_writer=4, test_samples=32, seed=seed,
        )

    def _trainer(self, fed, sparsifier, momentum, spill_after, seed=7):
        model = make_mlp(64, 8, hidden=(10,), seed=seed)
        ids = list(range(8))
        profiles = CHURN.build_profiles(ids)
        timing = HeterogeneousTimingModel(
            model.dimension, comm_time=10.0, profiles=profiles
        )
        scenario = DeploymentScenario.build(CHURN, ids, timing, profiles)
        trainer = FLTrainer(
            model, fed, sparsifier, timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=3, seed=seed, scenario=scenario,
            momentum_correction=momentum, spill_after=spill_after,
        )
        return trainer, scenario

    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_drops_identical_to_materialized_twin(self, name):
        factory, momentum, spill_after = self.VARIANTS[name]
        virtual, v_scn = self._trainer(
            self._virtual(), factory(), momentum, spill_after
        )
        # The eager twin never spills — hibernation must be exact.
        eager, e_scn = self._trainer(
            self._virtual().materialize(), factory(), momentum, 0
        )
        hv = virtual.run(9, k=12)
        he = eager.run(9, k=12)
        assert history_rows(hv) == history_rows(he)
        assert [r.dropped_ids for r in v_scn.stats.rounds] == [
            r.dropped_ids for r in e_scn.stats.rounds
        ]
        assert e_scn.stats.total_dropped > 0  # the gate actually bit
        np.testing.assert_array_equal(
            virtual.model.get_weights(), eager.model.get_weights()
        )
        # Virtual clients exist in first-participation order; compare
        # residuals by id against the eager population.
        eager_by_id = {c.client_id: c for c in eager.clients}
        assert virtual.clients  # cohorts were drawn
        for cv in virtual.clients:
            np.testing.assert_array_equal(
                cv.residual, eager_by_id[cv.client_id].residual
            )

    def test_population_scenario_backends_identical(self):
        # The full population-scale path (PopulationModel laws +
        # PopulationSampler cohorts + deadline gate) must stay
        # bit-identical between serial and sharded execution — the
        # CI smoke at N=1e5 runs this same check bigger.
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import (
            build_federation,
            build_model,
            build_scenario,
        )

        def build(backend):
            scenario_cfg = ScenarioConfig.default_churn().with_overrides(
                participants=6, over_selection=0.25, seed=0
            )
            config = ExperimentConfig(
                population=2000, samples_per_client=12, image_size=6,
                num_classes=8, classes_per_writer=4, hidden=(8,),
                learning_rate=0.05, batch_size=8, eval_every=2,
                scenario=scenario_cfg.to_dict(), seed=0,
            )
            federation = build_federation(config)
            model = build_model(config)
            timing, scenario = build_scenario(config, [], model.dimension)
            trainer = FLTrainer(
                model, federation, FABTopK(), timing=timing,
                learning_rate=config.learning_rate,
                batch_size=config.batch_size,
                eval_every=config.eval_every, seed=config.seed,
                backend=backend, scenario=scenario,
            )
            return trainer, scenario

        serial, s_scn = build("serial")
        fast, f_scn = build(ShardedBackend(jobs=2))
        hs = serial.run(3, k=20)
        hf = fast.run(3, k=20)
        assert history_rows(hs) == history_rows(hf)
        np.testing.assert_array_equal(
            serial.model.get_weights(), fast.model.get_weights()
        )
        assert [r.dropped_ids for r in s_scn.stats.rounds] == [
            r.dropped_ids for r in f_scn.stats.rounds
        ]
        # Only cohort-touched clients ever came to exist, identically.
        ids_s = [c.client_id for c in serial.clients]
        ids_f = [c.client_id for c in fast.clients]
        assert ids_s == ids_f
        assert 0 < len(ids_s) < 100  # O(cohort), nowhere near N=2000
        fast.close()


class TestAdaptiveDeadlineIntegration:
    """The online-learned deadline, end to end through the engine."""

    def _run(self, scenario_config, rounds=10):
        trainer, scenario = _scenario_trainer(
            "serial", scenario_config=scenario_config
        )
        trainer.run(rounds, k=12)
        return trainer, scenario

    def test_deadline_moves_and_is_recorded(self):
        _, scenario = self._run(ADAPTIVE_CHURN)
        schedule = scenario.hooks.policy.schedule
        assert isinstance(schedule, AdaptiveDeadlinePolicy)
        history = schedule.deadline_history
        # One decision per round plus the upcoming one.
        assert len(history) == len(scenario.stats.rounds) + 1
        assert len(set(history)) > 1  # it adapted
        interval = schedule.interval
        assert all(interval.contains(d) for d in history)
        # The per-round stats carry the deadline that was in force.
        assert [r.deadline for r in scenario.stats.rounds] == history[:-1]

    def test_probe_disabled_freezes_the_deadline(self):
        frozen_config = ADAPTIVE_CHURN.with_overrides(
            deadline=4.0, deadline_probe=False
        )
        _, scenario = self._run(frozen_config)
        schedule = scenario.hooks.policy.schedule
        assert schedule.deadline_history == [4.0] * (
            len(scenario.stats.rounds) + 1
        )
        assert all(r.deadline == 4.0 for r in scenario.stats.rounds)

    def test_probe_charges_no_extra_time(self):
        # The deadline probe is a counterfactual replay of data the
        # server already has — unlike the k-probe there is no difference
        # downlink, so an adaptive round at deadline d charges exactly
        # what a fixed-d round charges.  Round 1 plays d1 = 4.0 in both
        # runs (the walk only moves from round 2 on); with the probe
        # disabled the whole history must match the fixed run.
        fixed_config = CHURN.with_overrides(
            deadline=4.0, deadline_policy="fixed"
        )
        fixed, _ = self._run(fixed_config, rounds=6)
        probing_config = ADAPTIVE_CHURN.with_overrides(deadline=4.0)
        probing, _ = self._run(probing_config, rounds=1)
        assert history_rows(probing.history) == history_rows(
            fixed.history
        )[:1]
        frozen_config = ADAPTIVE_CHURN.with_overrides(
            deadline=4.0, deadline_probe=False
        )
        frozen, _ = self._run(frozen_config, rounds=6)
        assert history_rows(frozen.history) == history_rows(fixed.history)

    def test_probe_sees_preprocessed_uploads(self):
        # The counterfactual d'-round must re-aggregate the same
        # (possibly compression-degraded) uploads the server actually
        # aggregates.  With every client fast enough to beat both d and
        # d', the probe set equals the actual set, so w'(m) == w(m)
        # exactly and the sign estimate is 0 — the deadline never moves.
        # Aggregating raw (unquantized) uploads instead would make
        # loss_probe != loss_now and walk the deadline on pure
        # quantization noise.
        config = ScenarioConfig(
            availability="always", deadline_policy="adaptive",
            deadline_min=4.0, deadline_max=12.0,
            slow_fraction=0.0, seed=5,
        )
        trainer, scenario = _scenario_trainer(
            "serial", scenario_config=config,
            sparsifier=QuantizedSparsifier(
                FABTopK(), UniformQuantizer(num_levels=15, seed=5)
            ),
        )
        trainer.run(6, k=12)
        schedule = scenario.hooks.policy.schedule
        assert schedule.deadline_history == [8.0] * 7

    def test_up_probe_fires_exactly_on_dropped_rounds(self):
        # The upward replay only carries information when the real
        # round closed early — on clean rounds d'' admits the same set
        # as d and the observation must not carry an up triple at all
        # (so no-drop rounds behave exactly as the one-sided policy).
        trainer, scenario = _scenario_trainer(
            "serial", scenario_config=ADAPTIVE_CHURN
        )
        schedule = scenario.hooks.policy.schedule
        seen = []
        original = schedule.observe

        def spy(observation):
            seen.append(observation)
            original(observation)

        schedule.observe = spy
        trainer.run(10, k=12)
        dropped = [bool(r.dropped_ids) for r in scenario.stats.rounds]
        assert any(dropped) and not all(dropped)  # both kinds occurred
        assert len(seen) == len(dropped)
        for was_dropped, obs in zip(dropped, seen):
            if was_dropped:
                assert obs.probe_deadline_up is not None
                assert obs.probe_deadline_up > obs.deadline
                assert obs.loss_probe_up is not None
                assert obs.probe_round_time_up is not None
            else:
                assert obs.probe_deadline_up is None
                assert obs.loss_probe_up is None
                assert obs.probe_round_time_up is None

    def test_up_probe_never_perturbs_a_usable_walk(self):
        # Primacy, end to end: whenever the d'-estimate is usable the
        # two-sided walk is *identical* to the one-sided walk — the
        # upward replay only substitutes on deadlock rounds (down
        # estimate unavailable), it never votes alongside.  A summed
        # combination fails exactly this trace (the up sign cancels
        # the down sign in the tight regime and pins the walk at the
        # interval floor).
        def trace(one_sided):
            trainer, scenario = _scenario_trainer(
                "serial", scenario_config=ADAPTIVE_CHURN
            )
            schedule = scenario.hooks.policy.schedule
            down_always_usable = True
            original = schedule.observe

            def spy(observation):
                nonlocal down_always_usable
                if observation.dropped and AdaptiveDeadlinePolicy._one_sided_sign(
                    observation, observation.loss_probe,
                    observation.probe_deadline,
                    observation.probe_round_time,
                ) is None:
                    down_always_usable = False
                original(observation)

            schedule.observe = spy
            if one_sided:
                schedule.probe_deadline_up = lambda round_index: None
            trainer.run(10, k=12)
            return schedule.deadline_history, down_always_usable

        one, usable = trace(one_sided=True)
        two, _ = trace(one_sided=False)
        assert usable  # the scenario exercises the primary path only
        assert two == one
        assert len(set(two)) > 1  # and the walk actually moved

    def test_counterfactual_preprocess_leaves_the_quantizer_untouched(self):
        # The up-probe re-quantizes uploads the real round dropped; the
        # replay must not advance the quantizer's stream, or a probing
        # run would diverge from a non-probing one on later rounds.
        def upload():
            return ClientUpload(
                client_id=0,
                payload=SparseVector(
                    indices=np.array([1, 4, 7]),
                    values=np.array([0.3, -1.2, 0.05]),
                    dimension=10,
                ),
                sample_count=8,
            )

        sparsifier = QuantizedSparsifier(
            FABTopK(), UniformQuantizer(num_levels=15, seed=5)
        )
        state = sparsifier.quantizer._rng.bit_generator.state
        ghost = sparsifier.preprocess_uploads_counterfactual([upload()])
        assert sparsifier.quantizer._rng.bit_generator.state == state
        # ...and from that untouched state the real pass degrades the
        # values identically — the probe saw what the server would.
        real = sparsifier.preprocess_uploads([upload()])
        np.testing.assert_array_equal(
            ghost[0].payload.values, real[0].payload.values
        )

    def test_adaptation_state_survives_probing_rounds(self):
        # Probing must not perturb the model: after any round the
        # weights equal w_prev - lr * downlink (the probe swap/restore
        # is exact, not approximately undone).
        trainer, _ = _scenario_trainer(
            "serial", scenario_config=ADAPTIVE_CHURN
        )
        w_prev = trainer.model.get_weights()

        class Recorder(RoundHooks):
            downlink = None

            def after_aggregate(self, ctx):
                Recorder.downlink = ctx.downlink.payload

        trainer.engine.run_round(12, hooks=Recorder())
        expected = w_prev.copy()
        expected[Recorder.downlink.indices] -= (
            trainer.learning_rate * Recorder.downlink.values
        )
        np.testing.assert_array_equal(
            trainer.model.get_weights(), expected
        )


class TestDroppedUploadRecovery:
    """Acceptance (b): a deadline-dropped gradient is recovered exactly."""

    def _build(self):
        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(6,), seed=11)
        ids = [c.client_id for c in fed.clients]
        # Client ids[1] is a hard straggler; round 1's deadline drops it,
        # round 2 is an amnesty round that admits everyone.
        profiles = [
            ClientProfile(ids[0]),
            ClientProfile(ids[1], compute_factor=50.0, comm_factor=50.0),
        ]
        scenario_config = ScenarioConfig(
            availability="always", deadline=(3.0, 1000.0), seed=11,
        )
        timing = TimingModel(model.dimension, comm_time=10.0)
        scenario = DeploymentScenario.build(
            scenario_config, ids, timing, profiles
        )
        trainer = FLTrainer(
            model, fed, FABTopK(), timing=timing, learning_rate=0.05,
            batch_size=8, eval_every=1, seed=11, scenario=scenario,
        )
        return trainer, scenario

    def test_dropped_gradient_rides_the_residual_to_the_server(self):
        trainer, scenario = self._build()
        straggler = trainer.clients[1]
        dimension = trainer.model.dimension
        w0 = trainer.model.get_weights()

        # Independent replica of the straggler's data stream: gradients
        # g1 (at w0) and later g2 (at w1) computed outside the trainer.
        twin = _federation(seed=11, num_writers=2).clients[1]
        ref_model = make_mlp(64, 8, hidden=(6,), seed=11)

        class Recorder(RoundHooks):
            def __init__(self):
                self.uploads_by_round = {}

            def after_local_steps(self, ctx):
                self.uploads_by_round[ctx.round_index] = list(ctx.uploads)

        recorder = Recorder()
        # ---- round 1: tight deadline, straggler's upload dropped ----
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[0].dropped_ids == (straggler.client_id,)
        assert [up.client_id for up in recorder.uploads_by_round[1]] == [
            trainer.clients[0].client_id
        ]
        x1, y1 = twin.minibatch(8)
        ref_model.set_weights(w0)
        g1, _ = ref_model.gradient(x1, y1)
        # Nothing was reset: the whole gradient is still in the residual.
        np.testing.assert_array_equal(straggler.residual, g1)

        # ---- round 2: amnesty deadline, the straggler makes it ----
        w1 = trainer.model.get_weights()
        trainer.engine.run_round(dimension, hooks=recorder)
        assert scenario.stats.rounds[1].dropped_ids == ()
        x2, y2 = twin.minibatch(8)
        ref_model.set_weights(w1)
        g2, _ = ref_model.gradient(x2, y2)
        upload = {
            up.client_id: up for up in recorder.uploads_by_round[2]
        }[straggler.client_id]
        # The upload carries round 1's dropped gradient plus round 2's —
        # exact recovery through residual accumulation, not approximate.
        np.testing.assert_array_equal(upload.payload.to_dense(), g1 + g2)
        # k = D transmitted everything, so the residual is fully drained.
        np.testing.assert_array_equal(
            straggler.residual, np.zeros(dimension)
        )

    def test_discarding_sparsifier_still_discards_for_dropped_clients(self):
        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(6,), seed=11)
        ids = [c.client_id for c in fed.clients]
        profiles = [
            ClientProfile(ids[0]),
            ClientProfile(ids[1], compute_factor=50.0),
        ]
        scenario = DeploymentScenario.build(
            ScenarioConfig(availability="always", deadline=3.0, seed=11),
            ids, TimingModel(model.dimension, comm_time=10.0), profiles,
        )
        trainer = FLTrainer(
            model, fed, PeriodicK(model.dimension, seed=11),
            timing=TimingModel(model.dimension, comm_time=10.0),
            learning_rate=0.05, batch_size=8, eval_every=1, seed=11,
            scenario=scenario,
        )
        trainer.step(10)
        assert scenario.stats.rounds[0].dropped_ids == (ids[1],)
        # Non-accumulating scheme: the dropped client's residual is
        # discarded too (scheme semantics, not scenario semantics).
        np.testing.assert_array_equal(
            trainer.clients[1].residual, np.zeros(model.dimension)
        )


class TestDegenerateScenario:
    """Acceptance (c): no churn + no deadline == the plain trainer."""

    def test_reproduces_plain_trainer_exactly(self):
        fed = _federation()
        model = make_mlp(64, 8, hidden=(10,), seed=5)
        timing = TimingModel(model.dimension, comm_time=10.0)
        plain = FLTrainer(model, fed, FABTopK(), timing=timing,
                          learning_rate=0.05, batch_size=8, eval_every=3,
                          seed=5)
        idle = ScenarioConfig(
            availability="always", deadline=None, participants=0,
            slow_fraction=0.0, seed=5,
        )
        wrapped, scenario = _scenario_trainer("serial", scenario_config=idle)
        # The idle scenario run must not even perturb timing: rebuild it
        # on the same plain TimingModel the reference uses.
        assert isinstance(wrapped.timing, TimingModel)
        hp = plain.run(8, k=12)
        hw = wrapped.run(8, k=12)
        assert history_rows(hp) == history_rows(hw)
        np.testing.assert_array_equal(
            plain.model.get_weights(), wrapped.model.get_weights()
        )
        for cp, cw in zip(plain.clients, wrapped.clients):
            np.testing.assert_array_equal(cp.residual, cw.residual)
        assert scenario.stats.total_dropped == 0

    def test_pure_over_selection_still_trims_the_cohort(self):
        # No deadline at all, but m·(1+ε) over-selection must still
        # aggregate only the first m finishers — the gate cannot hinge
        # on a deadline being configured.
        config = ScenarioConfig(
            availability="always", deadline=None, participants=3,
            over_selection=0.5, seed=5,
        )
        trainer, scenario = _scenario_trainer("serial",
                                              scenario_config=config)
        trainer.run(3, k=12)
        for r in scenario.stats.rounds:
            assert r.cohort == 5      # ceil(3 * 1.5)
            assert r.arrived == 3
            assert len(r.dropped_ids) == 2


# ----------------------------------------------------------------------
# Golden scenario history
# ----------------------------------------------------------------------
def _golden_scenario_trainer():
    """The pinned scenario run: Markov churn + cycling deadline +
    over-selection at tiny scale.  This construction must not change,
    or the golden loses its meaning."""
    config = ScenarioConfig(
        availability="markov",
        p_drop=0.2,
        p_recover=0.6,
        participants=4,
        over_selection=0.5,
        deadline=(2.5, 2.5, 9.0),
        deadline_policy="cycling",
        slow_fraction=0.25,
        slow_factor=4.0,
        seed=3,
    )
    fed = _federation(seed=3, num_writers=6)
    model = make_mlp(64, 8, hidden=(6,), seed=3)
    ids = [c.client_id for c in fed.clients]
    profiles = config.build_profiles(ids)
    timing = HeterogeneousTimingModel(
        model.dimension, comm_time=10.0, profiles=profiles
    )
    scenario = DeploymentScenario.build(config, ids, timing, profiles)
    trainer = FLTrainer(
        model, fed, FABTopK(), timing=timing, learning_rate=0.05,
        batch_size=8, eval_every=2, seed=3, scenario=scenario,
    )
    return trainer, scenario


class TestGoldenScenarioHistory:
    """Acceptance (d): scenario semantics are pinned absolutely.

    Cross-backend equality cannot catch a change that moves every
    backend together (a re-ordered gate, a different close-time charge);
    this golden does.
    """

    def test_history_matches_golden(self):
        trainer, _ = _golden_scenario_trainer()
        trainer.run(6, k=10)
        golden = json.loads(GOLDEN_PATH.read_text())["scenario_fl_trainer"]
        expected = [
            (row["round_index"], row["k"], row["round_time"],
             row["cumulative_time"], row["loss"], row["accuracy"],
             row["uplink_elements"], row["downlink_elements"],
             tuple(
                 (int(cid), n) for cid, n in sorted(
                     row["contributions"].items(), key=lambda kv: int(kv[0])
                 )
             ))
            for row in golden
        ]
        assert history_rows(trainer.history) == expected

    def test_deadline_drops_match_golden(self):
        trainer, scenario = _golden_scenario_trainer()
        trainer.run(6, k=10)
        golden = json.loads(GOLDEN_PATH.read_text())
        expected = golden["scenario_fl_trainer_drops"]
        assert [
            list(r.dropped_ids) for r in scenario.stats.rounds
        ] == expected
        assert sum(len(d) for d in expected) > 0  # the gate really fired


# ----------------------------------------------------------------------
# Partial-aggregation reweighting
# ----------------------------------------------------------------------
class TestReweighting:
    def test_cohort_mode_scales_the_update_down(self):
        def run(reweight):
            config = ScenarioConfig(
                availability="always", deadline=3.0, reweight=reweight,
                seed=11,
            )
            fed = _federation(seed=11, num_writers=2)
            model = make_mlp(64, 8, hidden=(6,), seed=11)
            ids = [c.client_id for c in fed.clients]
            profiles = [
                ClientProfile(ids[0]),
                ClientProfile(ids[1], compute_factor=50.0),
            ]
            timing = TimingModel(model.dimension, comm_time=10.0)
            scenario = DeploymentScenario.build(config, ids, timing, profiles)
            trainer = FLTrainer(
                model, fed, FABTopK(), timing=timing, learning_rate=1.0,
                batch_size=8, eval_every=1, seed=11, scenario=scenario,
            )
            w0 = trainer.model.get_weights()
            trainer.step(12)
            counts = [c.sample_count for c in trainer.clients]
            return trainer.model.get_weights() - w0, counts

        arrived_update, counts = run("arrived")
        cohort_update, _ = run("cohort")
        factor = counts[0] / sum(counts)  # only client 0 arrived
        assert factor < 1.0
        np.testing.assert_allclose(
            cohort_update, arrived_update * factor, rtol=1e-12, atol=1e-15
        )

    def test_server_rejects_nonpositive_total_weight(self):
        from repro.fl.server import Server
        from repro.sparsify.base import SelectionResult

        uploads = _uploads({0: 3})
        selection = SelectionResult(indices=np.arange(3, dtype=np.int64))
        with pytest.raises(ValueError, match="total_weight"):
            Server(100).aggregate(uploads, selection, total_weight=0.0)


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_chained_hooks_order_and_record_k(self):
        calls = []

        class Named(RoundHooks):
            def __init__(self, name, k):
                self.name = name
                self._k = k

            def after_local_steps(self, ctx):
                calls.append(self.name)

            def extra_round_time(self, ctx):
                return 1.5

            def record_k(self, ctx):
                return self._k

        chain = ChainedHooks(Named("outer", 1.0), None, Named("inner", 2.0))
        chain.after_local_steps(None)
        assert calls == ["outer", "inner"]
        assert chain.extra_round_time(None) == 3.0
        assert chain.record_k(None) == 2.0  # innermost wins
        assert chain.round_timing(None) is None
        assert not chain.wants_probes

    def test_scenario_and_sampler_are_mutually_exclusive(self):
        fed = _federation()
        model = make_mlp(64, 8, hidden=(10,), seed=5)
        scenario = DeploymentScenario.build(
            ScenarioConfig(availability="always"),
            [c.client_id for c in fed.clients],
            TimingModel(model.dimension, comm_time=10.0),
        )
        with pytest.raises(ValueError, match="not both"):
            FLTrainer(model, fed, FABTopK(), sampler=object(),
                      scenario=scenario)

    def test_drop_upload_forgets_the_round(self):
        from repro.fl.client import Client

        fed = _federation(seed=11, num_writers=2)
        model = make_mlp(64, 8, hidden=(1,), seed=0)
        client = Client(fed.clients[0], model.dimension, batch_size=8)
        client.local_step(model, k=5, sparsifier=FABTopK())
        residual = client.residual.copy()
        client.drop_upload()
        np.testing.assert_array_equal(client.residual, residual)
        with pytest.raises(RuntimeError, match="local_step"):
            client.reset_transmitted(np.array([0, 1]))


# ----------------------------------------------------------------------
# Driver + CLI
# ----------------------------------------------------------------------
class TestScenarioDriverAndCLI:
    def test_run_scenario_smoke(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        config = ExperimentConfig.smoke().with_overrides(num_rounds=6)
        result = run_scenario(config)
        assert set(result.histories) == {"fixed-k", "adaptive-k"}
        assert result.scenario["availability"] == "markov"
        assert set(result.stats) == {"fixed-k", "adaptive-k"}
        for method in result.histories:
            assert len(result.histories[method]) >= 1
            assert 0.0 <= result.drop_rate(method) <= 1.0
        labels = result.delivery.labels()
        assert "fixed-k arrived" in labels
        assert "adaptive-k dropped (cumulative)" in labels

    def test_cli_scenario_writes_artifacts(self, tmp_path):
        from repro import cli

        code = cli.main([
            "scenario", "--out", str(tmp_path), "--scale", "smoke",
            "--rounds", "5", "--deadline", "2.5", "9",
            "--over-selection", "0.2", "--participants", "4",
        ])
        assert code == 0
        payload = json.loads(
            (tmp_path / "scenario_loss_vs_time.json").read_text()
        )
        assert {s["label"] for s in payload["series"]} == {
            "fixed-k", "adaptive-k"
        }
        assert (tmp_path / "scenario_delivery.json").exists()
        assert (tmp_path / "scenario_history_fixed-k.json").exists()
        # The deadline-policy comparison panel rides along.
        panel = json.loads(
            (tmp_path / "scenario_deadline_policies.json").read_text()
        )
        labels = {s["label"] for s in panel["series"]}
        assert {"cycling", "adaptive"} <= labels
        assert any(label.startswith("fixed-") for label in labels)
        assert (tmp_path / "scenario_deadline_traces.json").exists()

    def test_cli_scenario_flags_reach_the_config(self):
        from repro import cli

        args = cli.build_parser().parse_args([
            "scenario", "--availability", "diurnal", "--period", "8",
            "--duty", "0.25", "--deadline", "2.0", "2.0", "9.0",
            "--reweight", "cohort", "--seed", "3",
        ])
        scenario = cli._scenario_overrides(args, seed=3)
        assert scenario["availability"] == "diurnal"
        assert scenario["period"] == 8
        assert scenario["deadline"] == [2.0, 2.0, 9.0]
        assert scenario["reweight"] == "cohort"
        assert scenario["seed"] == 3

    def test_cli_deadline_policy_flags(self):
        from repro import cli

        args = cli.build_parser().parse_args([
            "scenario", "--deadline-policy", "adaptive",
            "--deadline-min", "2.0", "--deadline-max", "8.0",
            "--no-deadline-probe",
        ])
        scenario = cli._scenario_overrides(args, seed=0)
        assert scenario["deadline_policy"] == "adaptive"
        assert scenario["deadline_min"] == 2.0
        assert scenario["deadline_max"] == 8.0
        assert scenario["deadline_probe"] is False
        # Without an explicit interval the churn preset's schedule
        # (2.5, 2.5, 2.5, 9.0) seeds it.
        args = cli.build_parser().parse_args([
            "scenario", "--deadline-policy", "adaptive",
        ])
        scenario = ScenarioConfig.from_dict(
            cli._scenario_overrides(args, seed=0)
        )
        assert scenario.deadline_policy == "adaptive"
        assert scenario.deadline_min == 2.5
        assert scenario.deadline_max == 9.0
        # A single --deadline d seeds the interval [d/2, 2d] around it.
        args = cli.build_parser().parse_args([
            "scenario", "--deadline-policy", "adaptive",
            "--deadline", "5",
        ])
        scenario = ScenarioConfig.from_dict(
            cli._scenario_overrides(args, seed=0)
        )
        assert scenario.deadline == 5.0
        assert scenario.deadline_min == 2.5
        assert scenario.deadline_max == 10.0

    def test_cli_fixed_policy_collapses_schedule_preset(self):
        from repro import cli

        args = cli.build_parser().parse_args([
            "scenario", "--deadline-policy", "fixed",
        ])
        scenario = cli._scenario_overrides(args, seed=0)
        assert scenario["deadline_policy"] == "fixed"
        assert scenario["deadline"] == pytest.approx(
            (2.5 + 2.5 + 2.5 + 9.0) / 4.0
        )
        # cycling + a single value wraps it into a 1-entry schedule.
        args = cli.build_parser().parse_args([
            "scenario", "--deadline-policy", "cycling", "--deadline", "4",
        ])
        scenario = cli._scenario_overrides(args, seed=0)
        assert scenario["deadline_policy"] == "cycling"
        assert scenario["deadline"] == [4.0]

    def test_sweep_includes_scenario(self):
        from repro.cli import FIGURES
        from repro.parallel.sweep import SWEEP_FIGURES

        assert "scenario" in SWEEP_FIGURES
        assert SWEEP_FIGURES == FIGURES


# ----------------------------------------------------------------------
# Deadline-policy comparison panel (fixed vs cycling vs adaptive)
# ----------------------------------------------------------------------
class TestDeadlineAdaptationPanel:
    def test_deadline_variants_share_the_regime(self):
        from repro.experiments.scenario import deadline_variants

        variants = deadline_variants(ScenarioConfig.default_churn())
        assert set(variants) == {
            "fixed-2.5", "fixed-9", "cycling", "adaptive"
        }
        assert variants["fixed-2.5"].deadline == 2.5
        assert variants["fixed-9"].deadline == 9.0
        assert variants["cycling"].deadline == (2.5, 2.5, 2.5, 9.0)
        adaptive = variants["adaptive"]
        assert adaptive.deadline_policy == "adaptive"
        assert adaptive.deadline_min == 2.5
        assert adaptive.deadline_max == 9.0
        # Availability / stragglers / seed are shared across variants.
        for variant in variants.values():
            assert variant.availability == "markov"
            assert variant.slow_fraction == 0.25
            assert variant.seed == ScenarioConfig.default_churn().seed

    def test_deadline_variants_around_a_fixed_deadline(self):
        from repro.experiments.scenario import deadline_variants

        variants = deadline_variants(
            ScenarioConfig(deadline=4.0, deadline_policy="fixed")
        )
        assert variants["fixed-2"].deadline == 2.0
        assert variants["fixed-8"].deadline == 8.0
        assert variants["adaptive"].deadline_min == 2.0
        with pytest.raises(ValueError, match="needs a scenario"):
            deadline_variants(ScenarioConfig(deadline=None))

    def test_supports_deadline_comparison(self):
        from repro.experiments.scenario import supports_deadline_comparison

        assert supports_deadline_comparison(ScenarioConfig.default_churn())
        assert supports_deadline_comparison(ScenarioConfig(deadline=4.0))
        assert supports_deadline_comparison(ScenarioConfig(
            deadline_policy="adaptive", deadline_min=2.0, deadline_max=9.0,
        ))
        # Availability-only and degenerate all-equal schedules: no
        # interval to compare over.
        assert not supports_deadline_comparison(
            ScenarioConfig(deadline=None)
        )
        assert not supports_deadline_comparison(
            ScenarioConfig(deadline=(3.0, 3.0), deadline_policy="cycling")
        )

    def test_availability_only_scenario_skips_the_panel(self):
        # Regression guard: a deadline-less scenario's sweep/CLI unit
        # must still produce its primary artifacts — the comparison
        # panel is skipped, not failed.
        from repro.experiments.config import ExperimentConfig
        from repro.parallel.sweep import collect_artifacts

        scenario = ScenarioConfig(
            availability="markov", p_drop=0.2, p_recover=0.6,
            deadline=None, seed=0,
        )
        config = ExperimentConfig.smoke().with_overrides(
            num_rounds=3, scenario=scenario.to_dict()
        )
        artifacts = collect_artifacts("scenario", config)
        assert "scenario_loss_vs_time" in artifacts
        assert "scenario_deadline_policies" not in artifacts
        assert "scenario_deadline_traces" not in artifacts

    def test_run_deadline_adaptation_smoke(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_deadline_adaptation

        config = ExperimentConfig.smoke().with_overrides(num_rounds=6)
        result = run_deadline_adaptation(config)
        assert set(result.histories) == {
            "fixed-2.5", "fixed-9", "cycling", "adaptive"
        }
        assert result.loss_vs_time.labels() == list(result.histories)
        assert result.deadline_traces.labels() == list(result.histories)
        # Every policy's trace holds the deadline in force per round.
        fixed = result.deadline_traces.get("fixed-9")
        assert set(fixed.y) == {9.0}
        adaptive_trace = result.deadline_traces.get("adaptive")
        assert all(2.5 <= d <= 9.0 for d in adaptive_trace.y)
        for label in result.histories:
            assert result.stats[label]["rounds"] == len(
                result.deadline_traces.get(label).y
            )
        assert any(
            note.startswith("time to shared target loss")
            for note in result.loss_vs_time.notes
        )

    def test_adaptive_reaches_target_no_slower_than_best_fixed(self):
        # The acceptance regime: heterogeneous profiles where *neither*
        # fixed endpoint is good — the tight endpoint sits below the
        # fast clients' finish time (min_uploads rescues single-upload
        # rounds that plateau on disjoint writer classes), the loose
        # endpoint waits the 4x straggler tail — so a learned deadline,
        # oscillating into its own amnesty cycle, beats both.
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_deadline_adaptation

        scenario = ScenarioConfig(
            availability="always",
            deadline_policy="adaptive",
            deadline_min=1.0, deadline_max=12.0,
            slow_fraction=0.25, slow_factor=4.0,
            seed=1,
        )
        config = ExperimentConfig.smoke().with_overrides(
            num_clients=8, samples_per_client=16, num_classes=12,
            classes_per_writer=2, learning_rate=0.1, num_rounds=80,
            eval_every=1, seed=1, scenario=scenario.to_dict(),
        )
        result = run_deadline_adaptation(config)
        finals = result.final_losses()
        fixed_labels = [
            label for label in finals if label.startswith("fixed-")
        ]
        assert len(fixed_labels) == 2
        # The shared target: a loss level every policy's budget reached.
        target = max(finals.values())
        times = result.time_to_loss(target)
        assert times["adaptive"] < float("inf")
        assert times["adaptive"] <= min(
            times[label] for label in fixed_labels
        )
        # And adaptive's *final* loss beats both fixed endpoints
        # outright — the stronger form of the same claim.
        assert finals["adaptive"] < min(
            finals[label] for label in fixed_labels
        )
        # It earned that by actually moving the deadline.
        adaptive_trace = result.deadline_traces.get("adaptive").y
        assert len(set(adaptive_trace)) > 1
