"""Tests for the FL core: client, server, trainer (Algorithm 1), baselines."""

import numpy as np
import pytest

from repro.data.partition import partition_by_writer, partition_iid
from repro.data.synthetic import make_gaussian_blobs
from repro.fl.client import Client
from repro.fl.fedavg import AlwaysSendAllTrainer, FedAvgTrainer
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.server import Server
from repro.fl.trainer import FLTrainer, _as_schedule
from repro.nn.models import make_logistic, make_mlp
from repro.simulation.timing import TimingModel
from repro.sparsify.base import ClientUpload, SelectionResult, SparseVector
from repro.sparsify.fab_topk import FABTopK
from repro.sparsify.periodic import PeriodicK


@pytest.fixture
def federation():
    ds = make_gaussian_blobs(num_samples=300, num_classes=4, feature_dim=10,
                             separation=4.0, seed=0)
    return partition_iid(ds, num_clients=5, seed=0)


@pytest.fixture
def model(federation):
    return make_logistic(10, 4, seed=0)


class TestClient:
    def test_residual_accumulates(self, federation, model):
        client = Client(federation.clients[0], model.dimension, batch_size=8)
        assert np.all(client.residual == 0)
        client.local_step(model, k=5, sparsifier=FABTopK())
        first = client.residual.copy()
        assert np.abs(first).sum() > 0
        client.local_step(model, k=5, sparsifier=FABTopK())
        assert np.abs(client.residual).sum() != pytest.approx(
            np.abs(first).sum()
        )

    def test_upload_is_topk_of_residual(self, federation, model):
        client = Client(federation.clients[0], model.dimension, batch_size=8)
        upload = client.local_step(model, k=3, sparsifier=FABTopK())
        assert upload.payload.nnz == 3
        # Uploaded values must match the residual at those indices.
        np.testing.assert_allclose(
            upload.payload.values, client.residual[upload.payload.indices]
        )
        # And they must be the largest-|.| residual entries.
        threshold = np.abs(upload.payload.values).min()
        others = np.delete(np.abs(client.residual), upload.payload.indices)
        assert np.all(others <= threshold + 1e-12)

    def test_reset_transmitted_zeroes_intersection(self, federation, model):
        client = Client(federation.clients[0], model.dimension, batch_size=8)
        upload = client.local_step(model, k=4, sparsifier=FABTopK())
        selected = upload.payload.indices[:2]
        untouched_idx = upload.payload.indices[2:]
        untouched_before = client.residual[untouched_idx].copy()
        client.reset_transmitted(selected)
        np.testing.assert_allclose(client.residual[selected], 0.0)
        np.testing.assert_allclose(client.residual[untouched_idx], untouched_before)

    def test_reset_before_step_raises(self, federation, model):
        client = Client(federation.clients[0], model.dimension)
        with pytest.raises(RuntimeError):
            client.reset_transmitted(np.array([0]))

    def test_probe_flow(self, federation, model):
        client = Client(federation.clients[0], model.dimension, batch_size=8)
        with pytest.raises(RuntimeError):
            client.draw_probe_sample()
        client.local_step(model, k=3, sparsifier=FABTopK())
        with pytest.raises(RuntimeError):
            client.probe_loss(model, model.get_weights())
        client.draw_probe_sample()
        loss = client.probe_loss(model, model.get_weights())
        assert np.isfinite(loss) and loss >= 0

    def test_probe_loss_at_other_weights_restores(self, federation, model):
        client = Client(federation.clients[0], model.dimension, batch_size=8)
        client.local_step(model, k=3, sparsifier=FABTopK())
        client.draw_probe_sample()
        w = model.get_weights()
        client.probe_loss(model, np.zeros(model.dimension))
        np.testing.assert_allclose(model.get_weights(), w)


class TestServer:
    def test_weighted_aggregation(self):
        server = Server(dimension=6)
        u1 = ClientUpload(
            0, SparseVector(np.array([0, 2]), np.array([1.0, 2.0]), 6), 10
        )
        u2 = ClientUpload(
            1, SparseVector(np.array([2, 4]), np.array([4.0, 8.0]), 6), 30
        )
        selection = SelectionResult(indices=np.array([0, 2, 4]))
        msg = server.aggregate([u1, u2], selection)
        dense = msg.payload.to_dense()
        assert dense[0] == pytest.approx(0.25 * 1.0)
        assert dense[2] == pytest.approx(0.25 * 2.0 + 0.75 * 4.0)
        assert dense[4] == pytest.approx(0.75 * 8.0)

    def test_unuploaded_indices_excluded(self):
        # A selected index a client never uploaded contributes zero for
        # that client (the 1[j in J_i] indicator of Algorithm 1).
        server = Server(dimension=4)
        u1 = ClientUpload(0, SparseVector(np.array([1]), np.array([2.0]), 4), 1)
        selection = SelectionResult(indices=np.array([1, 3]))
        dense = server.aggregate([u1], selection).payload.to_dense()
        assert dense[1] == pytest.approx(2.0)
        assert dense[3] == 0.0

    def test_no_uploads_raises(self):
        with pytest.raises(ValueError):
            Server(4).aggregate([], SelectionResult(indices=np.array([0])))

    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            Server(0)


class TestTrainingHistory:
    def _record(self, i, t=None, loss=1.0):
        return RoundRecord(round_index=i, k=1.0, round_time=1.0,
                           cumulative_time=t if t is not None else float(i),
                           loss=loss)

    def test_monotone_round_index_enforced(self):
        h = TrainingHistory()
        h.append(self._record(1))
        with pytest.raises(ValueError):
            h.append(self._record(1))

    def test_loss_at_time(self):
        h = TrainingHistory()
        h.append(self._record(1, t=1.0, loss=5.0))
        h.append(self._record(2, t=2.0, loss=3.0))
        h.append(self._record(3, t=4.0, loss=2.0))
        assert h.loss_at_time(0.5) == 5.0
        assert h.loss_at_time(2.5) == 3.0
        assert h.loss_at_time(10.0) == 2.0

    def test_time_to_loss(self):
        h = TrainingHistory()
        h.append(self._record(1, t=1.0, loss=5.0))
        h.append(self._record(2, t=2.0, loss=3.0))
        assert h.time_to_loss(4.0) == 2.0
        assert h.time_to_loss(1.0) is None

    def test_csv_shape(self):
        h = TrainingHistory()
        h.append(self._record(1))
        csv_text = h.to_csv()
        lines = csv_text.strip().split("\n")
        assert len(lines) == 2
        assert lines[0].startswith("round,k,")

    def test_contribution_totals(self):
        h = TrainingHistory()
        h.append(RoundRecord(1, 1.0, 1.0, 1.0, 1.0, contributions={0: 2, 1: 3}))
        h.append(RoundRecord(2, 1.0, 1.0, 2.0, 1.0, contributions={0: 1}))
        assert h.contribution_counts() == {0: 3, 1: 3}

    def test_empty_history_errors(self):
        h = TrainingHistory()
        with pytest.raises(ValueError):
            _ = h.final_loss
        with pytest.raises(ValueError):
            h.loss_at_time(1.0)
        assert h.total_time == 0.0


class TestFLTrainer:
    def test_loss_decreases(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK(), learning_rate=0.1,
                            batch_size=16, seed=0)
        initial = trainer.global_loss()
        trainer.run(40, k=10)
        assert trainer.history.final_loss < initial * 0.8

    def test_weights_synchronized_semantics(self, federation, model):
        # The trainer applies one shared update; after a step, the model
        # weights differ from the start only at the selected indices.
        trainer = FLTrainer(model, federation, FABTopK(), learning_rate=0.1)
        w0 = model.get_weights()
        record = trainer.step(k=5)
        w1 = model.get_weights()
        changed = np.flatnonzero(w0 != w1)
        assert changed.size <= 5
        assert record.downlink_elements == 5

    def test_timing_accumulates(self, federation, model):
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        trainer = FLTrainer(model, federation, FABTopK(), timing=timing)
        trainer.run(3, k=5)
        expected_round = timing.sparse_round(5, 5).total
        assert trainer.clock == pytest.approx(3 * expected_round)

    def test_k_schedule_list(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK())
        trainer.run(4, k=[3, 5, 7, 7])
        assert trainer.history.ks() == [3.0, 5.0, 7.0, 7.0]

    def test_k_schedule_callable(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK())
        trainer.run(3, k=lambda m: 2 * m)
        assert trainer.history.ks() == [2.0, 4.0, 6.0]

    def test_k_schedule_holds_last(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK())
        trainer.run(3, k=[4])
        assert trainer.history.ks() == [4.0, 4.0, 4.0]

    def test_run_until_loss(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK(), learning_rate=0.1,
                            batch_size=16)
        initial = trainer.global_loss()
        target = initial * 0.9
        trainer.run_until_loss(target, k=10, max_rounds=200)
        assert trainer.history.final_loss <= target

    def test_invalid_k(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK())
        with pytest.raises(ValueError):
            trainer.step(k=0)
        with pytest.raises(ValueError):
            trainer.step(k=model.dimension + 1)

    def test_eval_every(self, federation, model):
        trainer = FLTrainer(model, federation, FABTopK(), eval_every=3)
        trainer.run(6, k=5)
        losses = trainer.history.losses()
        # Rounds 1, 3, 6 evaluated; 2, 4, 5 are NaN.
        assert not np.isnan(losses[0])
        assert np.isnan(losses[1])
        assert not np.isnan(losses[2])
        assert not np.isnan(losses[5])

    def test_periodic_sparsifier_integration(self, federation, model):
        trainer = FLTrainer(
            model, federation, PeriodicK(model.dimension, seed=1),
            learning_rate=0.1, batch_size=16,
        )
        initial = trainer.global_loss()
        trainer.run(60, k=10)
        assert trainer.history.final_loss < initial

    def test_validation(self, federation, model):
        with pytest.raises(ValueError):
            FLTrainer(model, federation, FABTopK(), learning_rate=0.0)
        with pytest.raises(ValueError):
            FLTrainer(model, federation, FABTopK(), eval_every=0)

    def test_as_schedule_empty_rejected(self):
        with pytest.raises(ValueError):
            _as_schedule([], 10)


class TestFedAvg:
    def test_loss_decreases(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=1.0)
        trainer = FedAvgTrainer(model, federation, timing, aggregation_period=3,
                                learning_rate=0.1, batch_size=16)
        initial = trainer.global_loss()
        trainer.run(30)
        assert trainer.history.final_loss < initial

    def test_communication_only_on_period(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        trainer = FedAvgTrainer(model, federation, timing, aggregation_period=3)
        trainer.run(6)
        uplinks = [r.uplink_elements for r in trainer.history]
        assert uplinks == [0, 0, model.dimension, 0, 0, model.dimension]

    def test_weights_resync_at_aggregation(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=1.0)
        trainer = FedAvgTrainer(model, federation, timing, aggregation_period=2,
                                learning_rate=0.1)
        trainer.run(2)  # aggregation just happened
        first = trainer._local_weights[0]
        for w in trainer._local_weights[1:]:
            np.testing.assert_allclose(w, first)

    def test_local_weights_diverge_between_aggregations(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=1.0)
        trainer = FedAvgTrainer(model, federation, timing, aggregation_period=10,
                                learning_rate=0.1)
        trainer.run(3)
        assert not np.allclose(trainer._local_weights[0], trainer._local_weights[1])

    def test_invalid_period(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=1.0)
        with pytest.raises(ValueError):
            FedAvgTrainer(model, federation, timing, aggregation_period=0)


class TestAlwaysSendAll:
    def test_loss_decreases_and_dense_cost(self, federation):
        model = make_logistic(10, 4, seed=0)
        timing = TimingModel(dimension=model.dimension, comm_time=10.0)
        trainer = AlwaysSendAllTrainer(model, federation, timing,
                                       learning_rate=0.1, batch_size=16)
        initial = trainer.model.loss_value(trainer._eval_x, trainer._eval_y)
        trainer.run(20)
        assert trainer.history.final_loss < initial
        assert trainer.clock == pytest.approx(20 * timing.dense_round().total)


class TestNonIIDLearning:
    def test_fab_topk_learns_under_writer_partition(self):
        from repro.data.synthetic import make_femnist_like

        ds = make_femnist_like(num_writers=6, samples_per_writer=30,
                               num_classes=10, classes_per_writer=3,
                               image_size=8, seed=1)
        fed = partition_by_writer(ds)
        model = make_mlp(64, 10, hidden=(16,), seed=1)
        trainer = FLTrainer(model, fed, FABTopK(), learning_rate=0.1,
                            batch_size=16, seed=1)
        initial = trainer.global_loss()
        trainer.run(60, k=100)
        assert trainer.history.final_loss < initial * 0.9
