"""Tests for the Assumption-2 measurement experiment."""

import numpy as np
import pytest

from repro.experiments.assumption2 import (
    Assumption2Result,
    _band_density,
    run_assumption2,
)
from repro.experiments.config import ExperimentConfig
from repro.fl.metrics import RoundRecord, TrainingHistory


def make_history(points):
    """points: list of (cumulative_time, loss)."""
    h = TrainingHistory()
    prev_t = 0.0
    for i, (t, loss) in enumerate(points, start=1):
        h.append(RoundRecord(
            round_index=i, k=1.0, round_time=t - prev_t,
            cumulative_time=t, loss=loss,
        ))
        prev_t = t
    return h


class TestBandDensity:
    def test_uniform_descent(self):
        # Loss falls 4 -> 0 over time 0 -> 4 linearly: density 1 everywhere.
        h = make_history([(1, 3.0), (2, 2.0), (3, 1.0), (4, 0.0)])
        # First record covers loss [4 (implicit start) ...]: band density
        # uses only recorded transitions, so query a fully-covered band.
        density = _band_density(h, band_hi=2.0, band_lo=1.0)
        assert density == pytest.approx(1.0)

    def test_band_never_crossed(self):
        h = make_history([(1, 5.0), (2, 4.5)])
        assert np.isnan(_band_density(h, band_hi=1.0, band_lo=0.5))

    def test_partial_overlap(self):
        # One step from loss 3 to 1 taking 4 time units; band [2.0, 1.5]
        # is a quarter of the interval -> gets a quarter of the time.
        h = make_history([(1, 3.0), (5, 1.0)])
        density = _band_density(h, band_hi=2.0, band_lo=1.5)
        assert density == pytest.approx(4.0 / 2.0)  # 1 time per 0.5 loss

    def test_noisy_blips_ignored(self):
        # Loss goes up then down; running-min accounting never produces
        # negative densities.
        h = make_history([(1, 3.0), (2, 3.5), (3, 2.0), (4, 1.0)])
        density = _band_density(h, band_hi=3.0, band_lo=1.0)
        assert density > 0

    def test_expensive_slow_phase(self):
        # Descending 3->2 takes 1 unit, 2->1 takes 9 units: the lower
        # band must report a much larger density.
        h = make_history([(1, 3.0), (2, 2.0), (11, 1.0)])
        fast = _band_density(h, band_hi=3.0, band_lo=2.0)
        slow = _band_density(h, band_hi=2.0, band_lo=1.0)
        assert slow > 3 * fast


class TestResultHelpers:
    def _result(self):
        return Assumption2Result(
            k_grid=[2, 8, 32],
            loss_bands=[(3.0, 2.0), (2.0, 1.0)],
            t_hat=np.array([
                [5.0, 2.0, 4.0],      # U-shape, argmin at k=8
                [6.0, 3.0, np.nan],   # argmin at k=8 with a missing point
            ]),
        )

    def test_band_argmin(self):
        r = self._result()
        assert r.band_argmin(0) == 8
        assert r.band_argmin(1) == 8

    def test_band_argmin_all_nan(self):
        r = Assumption2Result(
            k_grid=[2, 4], loss_bands=[(1.0, 0.5)],
            t_hat=np.array([[np.nan, np.nan]]),
        )
        assert r.band_argmin(0) is None

    def test_convexity_score(self):
        r = self._result()
        assert r.convexity_score(0) == 1.0  # 5,2,4: second diff positive
        # Band with <3 valid points is trivially convex.
        assert r.convexity_score(1) == 1.0

    def test_argmin_spread_zero_when_common(self):
        assert self._result().argmin_spread() == 0.0

    def test_argmin_spread_positive_when_moving(self):
        r = Assumption2Result(
            k_grid=[2, 8, 32],
            loss_bands=[(3.0, 2.0), (2.0, 1.0)],
            t_hat=np.array([[5.0, 2.0, 4.0], [9.0, 5.0, 1.0]]),
        )
        assert r.argmin_spread() > 0


class TestRunAssumption2:
    def test_smoke_run(self):
        config = ExperimentConfig.smoke().with_overrides(num_rounds=30)
        result = run_assumption2(config, k_grid=[4, 40, 200], num_bands=2,
                                 max_rounds=30)
        assert result.t_hat.shape == (2, 3)
        assert result.figure is not None
        assert len(result.figure.series) == 2
        # At least some bands/ks were actually measured.
        assert np.isfinite(result.t_hat).sum() >= 2

    def test_validation(self):
        config = ExperimentConfig.smoke()
        with pytest.raises(ValueError):
            run_assumption2(config, num_bands=0)
